package cca

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// integratorPort is a toy provides-port interface.
type integratorPort interface {
	Integrate(lo, hi float64) float64
}

// midpointIntegrator provides the integrator port.
type midpointIntegrator struct {
	svc   Services
	calls atomic.Int64
}

func (m *midpointIntegrator) SetServices(svc Services) error {
	m.svc = svc
	return svc.AddProvidesPort("integrator", "test.Integrator", m)
}

func (m *midpointIntegrator) Integrate(lo, hi float64) float64 {
	m.calls.Add(1)
	return (hi - lo) * (lo + hi) / 2
}

// driver uses the integrator port from its Go port.
type driver struct {
	svc    Services
	result chan float64
	fail   bool
}

func (d *driver) SetServices(svc Services) error {
	d.svc = svc
	if err := svc.RegisterUsesPort("calc", "test.Integrator"); err != nil {
		return err
	}
	return svc.AddProvidesPort("go", GoPortType, d)
}

func (d *driver) Go() error {
	if d.fail {
		return errors.New("driver failed")
	}
	p, err := d.svc.GetPort("calc")
	if err != nil {
		return err
	}
	integ := p.(integratorPort)
	// Each rank integrates its own slice; the cohort sums out-of-band.
	lo := float64(d.svc.Rank())
	part := integ.Integrate(lo, lo+1)
	total := d.svc.Cohort().AllreduceFloat64(part, 0) // OpSum
	if d.svc.Rank() == 0 {
		d.result <- total
	}
	return nil
}

func TestDirectFrameworkEndToEnd(t *testing.T) {
	const np = 4
	f := NewDirectFramework(np)
	results := make(chan float64, 1)
	integrators := make([]*midpointIntegrator, np)
	if err := f.AddComponent("integrator", func(rank int) Component {
		integrators[rank] = &midpointIntegrator{}
		return integrators[rank]
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddComponent("driver", func(rank int) Component {
		return &driver{result: results}
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect("driver", "calc", "integrator", "integrator"); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	// Sum over ranks r of integral of x from r to r+1 = sum (2r+1)/2 = 8.
	got := <-results
	if got != 8 {
		t.Errorf("result = %v, want 8", got)
	}
	// Direct connection means the provider instance itself was invoked —
	// one call per rank, in-process.
	for r, m := range integrators {
		if m.calls.Load() != 1 {
			t.Errorf("integrator rank %d called %d times", r, m.calls.Load())
		}
	}
}

func TestGetPortReturnsProviderObjectItself(t *testing.T) {
	// The defining property of a direct-connected framework: the port is a
	// library-call reference, not a proxy.
	f := NewDirectFramework(1)
	var provided *midpointIntegrator
	f.AddComponent("p", func(rank int) Component {
		provided = &midpointIntegrator{}
		return provided
	})
	var got any
	f.AddComponent("u", func(rank int) Component {
		return componentFunc(func(svc Services) error {
			if err := svc.RegisterUsesPort("x", "test.Integrator"); err != nil {
				return err
			}
			return svc.AddProvidesPort("go", GoPortType, goFunc(func() error {
				var err error
				got, err = svc.GetPort("x")
				return err
			}))
		})
	})
	if err := f.Connect("u", "x", "p", "integrator"); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if got != provided {
		t.Error("GetPort did not return the provider's own object")
	}
}

// componentFunc adapts a function to Component.
type componentFunc func(svc Services) error

func (f componentFunc) SetServices(svc Services) error { return f(svc) }

// goFunc adapts a function to GoPort.
type goFunc func() error

func (f goFunc) Go() error { return f() }

func TestConnectValidation(t *testing.T) {
	f := NewDirectFramework(2)
	f.AddComponent("p", func(rank int) Component { return &midpointIntegrator{} })
	f.AddComponent("u", func(rank int) Component {
		return componentFunc(func(svc Services) error {
			return svc.RegisterUsesPort("calc", "test.Integrator")
		})
	})
	cases := []struct{ u, up, p, pp string }{
		{"nobody", "calc", "p", "integrator"},
		{"u", "calc", "nobody", "integrator"},
		{"u", "wrong", "p", "integrator"},
		{"u", "calc", "p", "wrong"},
	}
	for _, c := range cases {
		if err := f.Connect(c.u, c.up, c.p, c.pp); err == nil {
			t.Errorf("Connect(%v) succeeded", c)
		}
	}
	if err := f.Connect("u", "calc", "p", "integrator"); err != nil {
		t.Errorf("valid connect failed: %v", err)
	}
}

func TestConnectTypeMismatch(t *testing.T) {
	f := NewDirectFramework(1)
	f.AddComponent("p", func(rank int) Component { return &midpointIntegrator{} })
	f.AddComponent("u", func(rank int) Component {
		return componentFunc(func(svc Services) error {
			return svc.RegisterUsesPort("calc", "test.SomethingElse")
		})
	})
	if err := f.Connect("u", "calc", "p", "integrator"); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestDuplicateRegistrations(t *testing.T) {
	f := NewDirectFramework(1)
	err := f.AddComponent("c", func(rank int) Component {
		return componentFunc(func(svc Services) error {
			if err := svc.AddProvidesPort("p", "t", struct{}{}); err != nil {
				return err
			}
			return svc.AddProvidesPort("p", "t", struct{}{})
		})
	})
	if err == nil {
		t.Error("duplicate provides port accepted")
	}
	f2 := NewDirectFramework(1)
	if err := f2.AddComponent("c", func(rank int) Component { return &midpointIntegrator{} }); err != nil {
		t.Fatal(err)
	}
	if err := f2.AddComponent("c", func(rank int) Component { return &midpointIntegrator{} }); err == nil {
		t.Error("duplicate component name accepted")
	}
}

func TestGoPortMustImplementInterface(t *testing.T) {
	f := NewDirectFramework(1)
	err := f.AddComponent("c", func(rank int) Component {
		return componentFunc(func(svc Services) error {
			return svc.AddProvidesPort("go", GoPortType, struct{}{})
		})
	})
	if err == nil {
		t.Error("non-GoPort under GoPortType accepted")
	}
}

func TestGetPortUnconnected(t *testing.T) {
	f := NewDirectFramework(1)
	var svc Services
	f.AddComponent("c", func(rank int) Component {
		return componentFunc(func(s Services) error {
			svc = s
			return s.RegisterUsesPort("calc", "t")
		})
	})
	if _, err := svc.GetPort("calc"); err == nil {
		t.Error("unconnected uses port resolved")
	}
	if _, err := svc.GetPort("never-registered"); err == nil {
		t.Error("unregistered uses port resolved")
	}
}

func TestRunPropagatesGoErrors(t *testing.T) {
	f := NewDirectFramework(2)
	f.AddComponent("d", func(rank int) Component {
		return &driver{fail: true, result: make(chan float64, 2)}
	})
	if err := f.Run(); err == nil {
		t.Error("Run did not report Go error")
	}
}

func TestMultipleGoComponentsRunConcurrently(t *testing.T) {
	// Two components that must run concurrently to finish: they exchange a
	// value through a shared channel in both directions.
	f := NewDirectFramework(1)
	ab := make(chan int, 1)
	ba := make(chan int, 1)
	mk := func(send chan<- int, recv <-chan int) func(rank int) Component {
		return func(rank int) Component {
			return componentFunc(func(svc Services) error {
				return svc.AddProvidesPort("go", GoPortType, goFunc(func() error {
					send <- 1
					<-recv
					return nil
				}))
			})
		}
	}
	f.AddComponent("a", mk(ab, ba))
	f.AddComponent("b", mk(ba, ab))
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCohortCommunicatorIsPerComponent(t *testing.T) {
	const np = 3
	f := NewDirectFramework(np)
	mk := func(name string) func(rank int) Component {
		return func(rank int) Component {
			return componentFunc(func(svc Services) error {
				return svc.AddProvidesPort("go", GoPortType, goFunc(func() error {
					// Heavy concurrent collective traffic on both cohorts.
					for i := 0; i < 20; i++ {
						if got := svc.Cohort().AllreduceInt(1, 0); got != np {
							return fmt.Errorf("%s: allreduce = %d", name, got)
						}
					}
					return nil
				}))
			})
		}
	}
	f.AddComponent("a", mk("a"))
	f.AddComponent("b", mk("b"))
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestServicesRankAndSize(t *testing.T) {
	const np = 5
	f := NewDirectFramework(np)
	seen := make([]bool, np)
	f.AddComponent("c", func(rank int) Component {
		return componentFunc(func(svc Services) error {
			if svc.Rank() != rank {
				t.Errorf("rank = %d, want %d", svc.Rank(), rank)
			}
			if svc.CohortSize() != np {
				t.Errorf("cohort size = %d", svc.CohortSize())
			}
			seen[rank] = true
			return nil
		})
	})
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never instantiated", r)
		}
	}
}
