// Package cca implements the component model of the Common Component
// Architecture as the paper describes it (Section 2.1): components
// instantiated as cohorts across a set of parallel processes, uses/provides
// ports connected by a framework, and Go ports launched concurrently at
// startup.
//
// This package provides the direct-connected framework, in which all
// components of one process live in the same address space and a port
// invocation is "a refined form of library call": GetPort hands the user
// the provider's port object itself. Distributed frameworks — where ports
// become parallel remote method invocations — are built on the same
// component model by internal/prmi and internal/frameworks.
package cca

import (
	"fmt"
	"sort"
	"sync"

	"mxn/internal/comm"
)

// PortType labels the interface a port carries. Connections require equal
// port types on both ends; this stands in for SIDL interface types.
type PortType string

// Component is the unit of composition. SetServices is called once per
// cohort instance at instantiation, mirroring the CCA setServices call:
// the component registers its provides and uses ports there.
type Component interface {
	SetServices(svc Services) error
}

// GoPort is the component equivalent of a main function: frameworks start
// every provided go port concurrently when the application is launched
// (the DCA behaviour the paper describes in Section 4.3).
type GoPort interface {
	Go() error
}

// GoPortType is the conventional type label for Go ports.
const GoPortType PortType = "cca.GoPort"

// Services is each cohort instance's handle on its framework, passed to
// SetServices.
type Services interface {
	// AddProvidesPort publishes a port object under a name and type.
	AddProvidesPort(name string, typ PortType, port any) error
	// RegisterUsesPort declares a connection end point this component will
	// later resolve with GetPort.
	RegisterUsesPort(name string, typ PortType) error
	// GetPort resolves a registered uses port to the connected provider's
	// port object. In a direct-connected framework the returned value is
	// the provider instance's object itself, co-located in this process.
	GetPort(name string) (any, error)
	// Rank returns this instance's rank within its cohort.
	Rank() int
	// CohortSize returns the number of instances in the cohort.
	CohortSize() int
	// Cohort returns the intra-cohort communicator — the out-of-band
	// channel (the paper's "e.g. using MPI") for interactions among the
	// cohort that do not go through ports.
	Cohort() *comm.Comm
}

// instance is one cohort member of one component.
type instance struct {
	comp     Component
	services *services
}

// componentEntry is a named parallel component: a cohort of instances.
type componentEntry struct {
	name      string
	instances []*instance
}

// connection wires a uses port to a provides port between two components.
type connection struct {
	provider *componentEntry
	provPort string
}

// DirectFramework is a direct-connected CCA framework: all components are
// instantiated as cohorts over the same set of processes, one instance of
// each component per process, and port invocations stay in-process.
type DirectFramework struct {
	np    int
	world *comm.World

	mu         sync.Mutex
	components map[string]*componentEntry
	running    bool
}

// NewDirectFramework creates a framework whose components will run as
// cohorts of np parallel processes.
func NewDirectFramework(np int) *DirectFramework {
	return &DirectFramework{
		np:         np,
		world:      comm.NewWorld(np),
		components: map[string]*componentEntry{},
	}
}

// NumProcs returns the framework's cohort width.
func (f *DirectFramework) NumProcs() int { return f.np }

// AddComponent instantiates a component cohort: factory is called once per
// rank and each instance immediately receives SetServices. The factory
// runs on the caller's goroutine; components needing rank-parallel setup
// do it in their Go port.
func (f *DirectFramework) AddComponent(name string, factory func(rank int) Component) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.running {
		return fmt.Errorf("cca: framework is running")
	}
	if _, dup := f.components[name]; dup {
		return fmt.Errorf("cca: component %q already exists", name)
	}
	cohortComms := f.world.Comms()
	entry := &componentEntry{name: name}
	for r := 0; r < f.np; r++ {
		comp := factory(r)
		svc := &services{
			framework: f,
			owner:     entry,
			rank:      r,
			cohort:    cohortComms[r],
			provides:  map[string]providesEntry{},
			uses:      map[string]usesEntry{},
		}
		inst := &instance{comp: comp, services: svc}
		entry.instances = append(entry.instances, inst)
		if err := comp.SetServices(svc); err != nil {
			return fmt.Errorf("cca: %s rank %d setServices: %w", name, r, err)
		}
	}
	f.components[name] = entry
	return nil
}

// Connect attaches component user's uses port to component provider's
// provides port, for every rank of the cohorts. Port types must match.
func (f *DirectFramework) Connect(user, usesPort, provider, providesPort string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ue, ok := f.components[user]
	if !ok {
		return fmt.Errorf("cca: no component %q", user)
	}
	pe, ok := f.components[provider]
	if !ok {
		return fmt.Errorf("cca: no component %q", provider)
	}
	for r := 0; r < f.np; r++ {
		us := ue.instances[r].services
		ps := pe.instances[r].services
		u, ok := us.uses[usesPort]
		if !ok {
			return fmt.Errorf("cca: %s has no uses port %q", user, usesPort)
		}
		p, ok := ps.provides[providesPort]
		if !ok {
			return fmt.Errorf("cca: %s has no provides port %q", provider, providesPort)
		}
		if u.typ != p.typ {
			return fmt.Errorf("cca: port type mismatch: %s.%s is %q, %s.%s is %q",
				user, usesPort, u.typ, provider, providesPort, p.typ)
		}
		u.conn = &connection{provider: pe, provPort: providesPort}
		us.uses[usesPort] = u
	}
	return nil
}

// Run launches the application: every provided Go port of every component
// starts concurrently on every rank, and Run returns once all have
// finished, reporting the first error.
func (f *DirectFramework) Run() error {
	f.mu.Lock()
	if f.running {
		f.mu.Unlock()
		return fmt.Errorf("cca: framework already running")
	}
	f.running = true
	type job struct {
		label string
		port  GoPort
	}
	var jobs []job
	names := make([]string, 0, len(f.components))
	for name := range f.components {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entry := f.components[name]
		for r, inst := range entry.instances {
			for portName, p := range inst.services.provides {
				gp, ok := p.port.(GoPort)
				if !ok || p.typ != GoPortType {
					continue
				}
				jobs = append(jobs, job{
					label: fmt.Sprintf("%s.%s[rank %d]", name, portName, r),
					port:  gp,
				})
			}
		}
	}
	f.mu.Unlock()

	errs := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			if err := j.port.Go(); err != nil {
				errs <- fmt.Errorf("cca: %s: %w", j.label, err)
			}
		}(j)
	}
	wg.Wait()
	close(errs)
	f.mu.Lock()
	f.running = false
	f.mu.Unlock()
	return <-errs // nil if channel drained empty
}

// providesEntry is one published port of one instance.
type providesEntry struct {
	typ  PortType
	port any
}

// usesEntry is one declared connection end point of one instance.
type usesEntry struct {
	typ  PortType
	conn *connection
}

// services implements Services for a direct-connected framework.
type services struct {
	framework *DirectFramework
	owner     *componentEntry
	rank      int
	cohort    *comm.Comm

	mu       sync.Mutex
	provides map[string]providesEntry
	uses     map[string]usesEntry
}

func (s *services) AddProvidesPort(name string, typ PortType, port any) error {
	if port == nil {
		return fmt.Errorf("cca: provides port %q is nil", name)
	}
	if typ == GoPortType {
		if _, ok := port.(GoPort); !ok {
			return fmt.Errorf("cca: port %q declared %q but does not implement GoPort", name, typ)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.provides[name]; dup {
		return fmt.Errorf("cca: provides port %q already registered", name)
	}
	s.provides[name] = providesEntry{typ: typ, port: port}
	return nil
}

func (s *services) RegisterUsesPort(name string, typ PortType) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.uses[name]; dup {
		return fmt.Errorf("cca: uses port %q already registered", name)
	}
	s.uses[name] = usesEntry{typ: typ}
	return nil
}

func (s *services) GetPort(name string) (any, error) {
	s.mu.Lock()
	u, ok := s.uses[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cca: no uses port %q", name)
	}
	if u.conn == nil {
		return nil, fmt.Errorf("cca: uses port %q is not connected", name)
	}
	provInst := u.conn.provider.instances[s.rank]
	provInst.services.mu.Lock()
	p, ok := provInst.services.provides[u.conn.provPort]
	provInst.services.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cca: provider dropped port %q", u.conn.provPort)
	}
	return p.port, nil
}

func (s *services) Rank() int          { return s.rank }
func (s *services) CohortSize() int    { return s.framework.np }
func (s *services) Cohort() *comm.Comm { return s.cohort }
