package comm

import (
	"runtime"
	"testing"
	"time"
)

// RunTimeout runs body on a fresh n-rank cohort like Run, but acts as a
// deadlock watchdog: if the cohort has not finished within timeout, the
// test fails with a dump of every goroutine stack, which is the evidence
// needed to see which rank is blocked in which receive or collective.
//
// Collectives in this package deadlock exactly as MPI would on a wrong
// ordering (see the Figure 5 experiment), so any test standing up a cohort
// should prefer RunTimeout over Run: a bug then costs one timeout and a
// readable stack dump instead of a hung test binary.
//
// On timeout the cohort's goroutines are abandoned — acceptable in a
// failing test, fatal to a long-lived process; nothing outside tests should
// call this.
func RunTimeout(t testing.TB, timeout time.Duration, n int, body func(c *Comm)) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		Run(n, body)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("comm cohort of %d still running after %v — goroutine dump:\n%s", n, timeout, buf)
	}
}
