package comm

import (
	"testing"
)

func TestWorldGrowAddsRanks(t *testing.T) {
	w := NewWorld(2)
	old := w.Comms()

	added := w.Grow(4)
	if len(added) != 2 || added[0] != 2 || added[1] != 3 {
		t.Fatalf("Grow returned %v, want [2 3]", added)
	}
	if w.Size() != 4 {
		t.Fatalf("world size %d after grow, want 4", w.Size())
	}
	if w.Grow(4) != nil {
		t.Fatal("no-op grow returned added ranks")
	}

	// Communicators created before the grow keep working: groups are
	// fixed rank lists, untouched by new world ranks.
	done := make(chan struct{})
	go func() {
		defer close(done)
		old[0].Send(1, 7, 42)
	}()
	if v, _ := old[1].Recv(0, 7); v.(int) != 42 {
		t.Fatal("pre-grow communicator lost a message")
	}
	<-done

	// A group spanning old and new ranks exchanges both ways.
	cs := w.Group([]int{0, 1, 2, 3})
	go cs[3].Send(0, 9, "hello")
	if v, _ := cs[0].Recv(3, 9); v.(string) != "hello" {
		t.Fatal("joiner→old message lost")
	}
	go cs[0].Send(2, 9, "back")
	if v, _ := cs[2].Recv(0, 9); v.(string) != "back" {
		t.Fatal("old→joiner message lost")
	}
}

func TestWorldGrowRejectsShrink(t *testing.T) {
	w := NewWorld(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Grow to a smaller world did not panic")
		}
	}()
	w.Grow(2)
}

func TestWorldKillSurvivesGrow(t *testing.T) {
	// Death flags are shared by pointer across world snapshots: a rank
	// killed before a grow stays dead after it, and a kill through a
	// pre-grow snapshot is seen by post-grow communicators.
	w := NewWorld(3)
	pre := w.Comms()
	w.Kill(1)
	w.Grow(5)
	if w.Alive(1) {
		t.Fatal("grow resurrected a dead rank")
	}
	if !w.Alive(3) || !w.Alive(4) {
		t.Fatal("joiners not alive")
	}
	w.Kill(0)
	if w.Alive(0) {
		t.Fatal("kill after grow not observed")
	}
	// Sends to and from dead ranks are dropped, not delivered.
	post := w.Group([]int{0, 1, 2, 3, 4})
	post[2].Send(1, 5, "lost")
	post[0].Send(2, 5, "from the dead")
	if _, _, ok := post[1].TryRecv(2, 5); ok {
		t.Fatal("message delivered to dead rank")
	}
	if _, _, ok := post[2].TryRecv(0, 5); ok {
		t.Fatal("message delivered from dead rank")
	}
	_ = pre
}
