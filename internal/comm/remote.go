// Remote mailbox path: ConnectPeer couples two Worlds over a
// transport.Conn (typically an internal/session connection, so physical
// link failures are absorbed below this layer) by binding a set of world
// ranks to the peer. Sends to a bound rank are encoded and forwarded on
// the connection instead of queued locally; frames arriving from the
// peer are decoded and delivered into local mailboxes. When the
// connection reports a permanent failure — for a session conn, after its
// redial budget is exhausted and the circuit opens with
// session.ErrPeerLost — every bound rank is Killed, which is exactly the
// signal the fenced transfer policies (FailStrict/FailRedistribute) and
// the PRMI failure model are built on.
//
// Both sides number ranks in one unified space: with nA local ranks on
// side A and nB on side B, side A builds a world of nA+nB ranks and binds
// [nA, nA+nB) to the peer, while side B builds the mirror image. Group
// traffic then matches across the wire through SharedGroup, which lets
// both sides agree on a communicator identity explicitly (ordinary Group
// identities are process-local counters and would collide blindly).
//
// Payloads cross the wire through a small codec registry. Plain values
// (the wire.PutValue set, plus int round-tripping) need no registration;
// packages whose message structs cross worlds register a RemoteCodec for
// them (redist's transfer messages, core's heartbeat pings). Sub and
// Split are NOT remote-safe: they pass *Comm handles as payloads, which
// are meaningless in another process image — build cross-world groups
// with SharedGroup instead.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mxn/internal/obs"
	"mxn/internal/transport"
	"mxn/internal/wire"
)

var (
	mRemoteForwarded = obs.Default().Counter("comm.remote_msgs_forwarded")
	mRemoteDelivered = obs.Default().Counter("comm.remote_msgs_delivered")
	mRemotePeersLost = obs.Default().Counter("comm.remote_peers_lost")
)

// RemoteCodec encodes and decodes one family of payload values for the
// remote mailbox path. Encode reports whether it handled v (false lets
// the next codec try, ending at the built-in generic codec); it must not
// write anything when it returns false. Decode reverses Encode.
type RemoteCodec struct {
	Encode func(e *wire.Encoder, v any) bool
	Decode func(d *wire.Decoder) (any, error)
}

// codecGeneric is the built-in tag: wire.PutValue's dynamic set, with an
// int sub-tag so int payloads round-trip as int rather than int64.
const codecGeneric = 0

var remoteCodecs struct {
	mu    sync.RWMutex
	byTag map[byte]RemoteCodec
	order []byte // Encode trial order; generic always last
}

// RegisterRemotePayload registers a codec for payload values crossing
// ConnectPeer links under the given tag. Tags are process-global and must
// match on both peers; tag 0 is the built-in generic codec. Intended to
// be called from package init — registering a tag twice panics.
func RegisterRemotePayload(tag byte, c RemoteCodec) {
	if tag == codecGeneric {
		panic("comm: remote payload tag 0 is reserved for the generic codec")
	}
	if c.Encode == nil || c.Decode == nil {
		panic("comm: remote payload codec needs both Encode and Decode")
	}
	remoteCodecs.mu.Lock()
	defer remoteCodecs.mu.Unlock()
	if remoteCodecs.byTag == nil {
		remoteCodecs.byTag = map[byte]RemoteCodec{}
	}
	if _, dup := remoteCodecs.byTag[tag]; dup {
		panic(fmt.Sprintf("comm: remote payload tag %d registered twice", tag))
	}
	remoteCodecs.byTag[tag] = c
	remoteCodecs.order = append(remoteCodecs.order, tag)
}

// encodeRemotePayload writes [codec tag][payload] using the first
// registered codec that claims v, falling back to the generic codec.
// Unsupported payload types panic (same contract as wire.PutValue): a
// payload silently dropped at the boundary would be a deadlock upstream.
func encodeRemotePayload(e *wire.Encoder, v any) {
	remoteCodecs.mu.RLock()
	for _, tag := range remoteCodecs.order {
		c := remoteCodecs.byTag[tag]
		e.PutByte(tag)
		if c.Encode(e, v) {
			remoteCodecs.mu.RUnlock()
			return
		}
		// Undo the speculative tag byte (Encode wrote nothing).
		e.Unwrite(1)
	}
	remoteCodecs.mu.RUnlock()
	e.PutByte(codecGeneric)
	putGenericValue(e, v)
}

// putGenericValue wraps wire.PutValue with sub-tags so that int — which
// the wire contract deliberately flattens to int64 — round-trips as int
// at any nesting depth. Mailbox consumers type-assert their payloads, so
// an int that came back as int64 would panic the receiving rank.
func putGenericValue(e *wire.Encoder, v any) {
	switch x := v.(type) {
	case int:
		e.PutByte(1)
		e.PutInt(x)
	case []any:
		e.PutByte(2)
		e.PutUvarint(uint64(len(x)))
		for _, el := range x {
			putGenericValue(e, el)
		}
	default:
		e.PutByte(0)
		e.PutValue(v)
	}
}

func getGenericValue(d *wire.Decoder) (any, error) {
	switch sub := d.Byte(); sub {
	case 1:
		return d.Int(), d.Err()
	case 2:
		n := int(d.Uvarint())
		if d.Err() != nil {
			return nil, d.Err()
		}
		// Each element consumes at least one byte, so a hostile length
		// prefix cannot force an allocation beyond the buffer size.
		if n > d.Remaining() {
			return nil, fmt.Errorf("comm: remote payload: list length %d exceeds frame", n)
		}
		out := make([]any, 0, n)
		for i := 0; i < n; i++ {
			v, err := getGenericValue(d)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case 0:
		v := d.Value()
		return v, d.Err()
	default:
		return nil, fmt.Errorf("comm: remote payload: unknown generic sub-tag %d", sub)
	}
}

func decodeRemotePayload(d *wire.Decoder) (any, error) {
	tag := d.Byte()
	if tag == codecGeneric {
		return getGenericValue(d)
	}
	remoteCodecs.mu.RLock()
	c, ok := remoteCodecs.byTag[tag]
	remoteCodecs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("comm: remote payload: no codec registered for tag %d", tag)
	}
	return c.Decode(d)
}

// RemotePeer is one ConnectPeer binding: a connection plus the world
// ranks that live on the other side of it.
type RemotePeer struct {
	w     *World
	conn  transport.Conn
	owned transport.OwnedSender // non-nil when conn can take payload ownership
	ranks []int

	wmu    sync.Mutex // serializes Send framing on conn
	closed atomic.Bool
	done   chan struct{}
	errMu  sync.Mutex
	err    error
}

// errPeerDetached marks a deliberate Close, distinguishing it from a
// transport failure in Err.
var errPeerDetached = errors.New("comm: remote peer closed")

// ConnectPeer binds the given world ranks to conn: messages sent to them
// are forwarded over the connection, and frames arriving on it are
// delivered into this world's local mailboxes. The bound ranks must
// already exist (NewWorld or Grow) and must be bound at most once; the
// peer must run the mirror-image ConnectPeer over the same connection.
//
// ConnectPeer installs the binding like Grow installs new ranks: sends
// racing with it may still use the previous state and queue locally, so
// connect peers during setup, before the rank goroutines start.
//
// When conn.Recv or a forwarding Send reports an error, the failure is
// permanent by construction (a session conn only errors after its
// reconnect budget is spent) and every bound rank is Killed, handing the
// death to the liveness and fencing layers. Close detaches deliberately
// with the same rank-killing semantics.
func (w *World) ConnectPeer(conn transport.Conn, ranks []int) *RemotePeer {
	rp := &RemotePeer{
		w:     w,
		conn:  conn,
		ranks: append([]int(nil), ranks...),
		done:  make(chan struct{}),
	}
	// When the connection can take ownership of pooled payload buffers
	// (session conns, raw TCP conns), forward borrows payloads instead of
	// copying them into the frame encoding.
	rp.owned, _ = conn.(transport.OwnedSender)
	w.growMu.Lock()
	cur := w.st()
	next := &worldState{
		boxes:  cur.boxes,
		dead:   cur.dead,
		remote: make([]*RemotePeer, len(cur.remote)),
	}
	copy(next.remote, cur.remote)
	for _, r := range rp.ranks {
		if r < 0 || r >= len(cur.boxes) {
			w.growMu.Unlock()
			panic(fmt.Sprintf("comm: ConnectPeer rank %d outside world of size %d", r, len(cur.boxes)))
		}
		if next.remote[r] != nil {
			w.growMu.Unlock()
			panic(fmt.Sprintf("comm: rank %d already bound to a remote peer", r))
		}
		next.remote[r] = rp
	}
	w.state.Store(next)
	w.growMu.Unlock()
	go rp.serve()
	return rp
}

// Ranks returns the world ranks bound to this peer.
func (rp *RemotePeer) Ranks() []int { return append([]int(nil), rp.ranks...) }

// Err returns the error that tore the binding down, nil while healthy.
func (rp *RemotePeer) Err() error {
	rp.errMu.Lock()
	defer rp.errMu.Unlock()
	return rp.err
}

// Done is closed once the binding is torn down and the bound ranks are
// Killed.
func (rp *RemotePeer) Done() <-chan struct{} { return rp.done }

// Close detaches the peer: the connection is closed and the bound ranks
// are Killed (the peer's mirror binding sees the close as a permanent
// loss and does the same on its side).
func (rp *RemotePeer) Close() { rp.fail(errPeerDetached) }

// fail tears the binding down exactly once: close the connection (which
// unblocks serve), record the cause, and Kill every bound rank so the
// failure surfaces through the normal dead-rank machinery.
func (rp *RemotePeer) fail(cause error) {
	if rp.closed.Swap(true) {
		return
	}
	rp.errMu.Lock()
	rp.err = cause
	rp.errMu.Unlock()
	rp.conn.Close()
	if !errors.Is(cause, errPeerDetached) {
		mRemotePeersLost.Inc()
	}
	for _, r := range rp.ranks {
		rp.w.Kill(r)
	}
}

// forward ships one message to the peer. Wire layout:
// [from uvarint][to uvarint][tag i64][gid u64][codec tag + payload].
//
// When the connection implements transport.OwnedSender, the encoder runs
// in borrow mode: a codec that calls PutBytesRef for its bulk payload
// (the xferMsg codec does, for the element bytes) leaves that slice out
// of the header encoding, and the frame goes out as header + borrowed
// payload with ownership of the payload buffer transferred to the conn.
// No payload byte is copied between the pack buffer and the socket.
func (rp *RemotePeer) forward(from, to, tag int, gid uint64, payload any) {
	if rp.closed.Load() {
		mDroppedDead.Inc()
		return
	}
	var e *wire.Encoder
	if rp.owned != nil {
		e = wire.NewEncoderV(nil)
	} else {
		e = wire.NewEncoder(nil)
	}
	e.PutUvarint(uint64(from))
	e.PutUvarint(uint64(to))
	e.PutInt64(int64(tag))
	e.PutUint64(gid)
	encodeRemotePayload(e, payload)
	head, data := e.Vector()
	rp.wmu.Lock()
	var err error
	if data != nil {
		err = rp.owned.SendOwned(head, data)
	} else {
		err = rp.conn.Send(head)
	}
	rp.wmu.Unlock()
	if err != nil {
		rp.fail(err)
		return
	}
	mRemoteForwarded.Inc()
}

// serve is the receive pump: decode inbound frames into local mailboxes
// until the connection dies, then tear the binding down.
func (rp *RemotePeer) serve() {
	defer close(rp.done)
	for {
		msg, err := rp.conn.Recv()
		if err != nil {
			rp.fail(err)
			return
		}
		if err := rp.deliver(msg); err != nil {
			rp.fail(err)
			return
		}
	}
}

func (rp *RemotePeer) deliver(buf []byte) error {
	d := wire.NewDecoder(buf)
	from := int(d.Uvarint())
	to := int(d.Uvarint())
	tag := int(d.Int64())
	gid := d.Uint64()
	if d.Err() != nil {
		return fmt.Errorf("comm: corrupt remote frame header: %w", d.Err())
	}
	st := rp.w.st()
	if to < 0 || to >= len(st.boxes) || st.remote[to] != nil {
		return fmt.Errorf("comm: remote frame addressed to rank %d, which is not local", to)
	}
	if from < 0 || from >= len(st.boxes) {
		return fmt.Errorf("comm: remote frame from out-of-world rank %d", from)
	}
	// Dead ranks neither produce nor consume traffic (the mirror of the
	// send-side check); the payload is not even decoded.
	if st.dead[to].Load() || st.dead[from].Load() {
		mDroppedDead.Inc()
		return nil
	}
	payload, err := decodeRemotePayload(d)
	if err != nil {
		return err
	}
	if d.Err() != nil {
		return fmt.Errorf("comm: corrupt remote payload: %w", d.Err())
	}
	st.boxes[to].put(message{from: from, tag: tag, gid: gid, payload: payload})
	mRemoteDelivered.Inc()
	return nil
}

// sharedGroupBit marks communicator identities chosen explicitly through
// SharedGroup, keeping them disjoint from the process-local counter that
// numbers ordinary groups.
const sharedGroupBit = uint64(1) << 63

// SharedGroup creates a communicator whose identity is agreed explicitly:
// both worlds of a ConnectPeer pair call SharedGroup with the same id and
// the same rank list (in the unified rank space), and messages match
// across the wire because the group identity travels with each frame.
// One handle per member is returned in group order, as with Group; each
// side uses the handles of its local ranks and ignores the rest.
func (w *World) SharedGroup(id uint64, ranks []int) []*Comm {
	if id&sharedGroupBit != 0 {
		panic(fmt.Sprintf("comm: SharedGroup id %#x has the reserved high bit set", id))
	}
	size := w.Size()
	g := &group{
		world: w,
		ranks: append([]int(nil), ranks...),
		gid:   id | sharedGroupBit,
	}
	cs := make([]*Comm, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= size {
			panic(fmt.Sprintf("comm: rank %d outside world of size %d", r, size))
		}
		cs[i] = &Comm{group: g, rank: i}
	}
	return cs
}
