package comm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// watchdog is the per-cohort deadline for tests below: generous next to the
// microsecond message latencies involved, small next to the test binary's
// own timeout, and it buys a goroutine dump instead of a hung binary when a
// collective deadlocks.
const watchdog = 10 * time.Second

func TestSendRecvBasic(t *testing.T) {
	RunTimeout(t, watchdog, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, "hello")
		} else {
			v, src := c.Recv(0, 7)
			if v.(string) != "hello" || src != 0 {
				t.Errorf("got %v from %d, want hello from 0", v, src)
			}
		}
	})
}

func TestRecvTagMatching(t *testing.T) {
	RunTimeout(t, watchdog, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, "one")
			c.Send(1, 2, "two")
			c.Send(1, 3, "three")
		} else {
			// Receive out of send order by tag.
			v2, _ := c.Recv(0, 2)
			v3, _ := c.Recv(0, 3)
			v1, _ := c.Recv(0, 1)
			if v1 != "one" || v2 != "two" || v3 != "three" {
				t.Errorf("tag matching broken: %v %v %v", v1, v2, v3)
			}
		}
	})
}

func TestRecvWildcards(t *testing.T) {
	RunTimeout(t, watchdog, 3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 5, 10)
		case 1:
			c.Send(2, 5, 11)
		case 2:
			sum := 0
			for i := 0; i < 2; i++ {
				v, src := c.Recv(AnySource, AnyTag)
				sum += v.(int)
				if src != 0 && src != 1 {
					t.Errorf("bad source %d", src)
				}
			}
			if sum != 21 {
				t.Errorf("sum = %d, want 21", sum)
			}
		}
	})
}

func TestFIFOPerPairAndTag(t *testing.T) {
	const n = 100
	RunTimeout(t, watchdog, 2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, i)
			}
		} else {
			for i := 0; i < n; i++ {
				v, _ := c.Recv(0, 0)
				if v.(int) != i {
					t.Fatalf("message %d arrived out of order: got %v", i, v)
				}
			}
		}
	})
}

func TestTryRecv(t *testing.T) {
	RunTimeout(t, watchdog, 2, func(c *Comm) {
		if c.Rank() == 0 {
			if _, _, ok := c.TryRecv(1, 0); ok {
				t.Error("TryRecv returned ok with empty mailbox")
			}
			c.Send(1, 9, "go")
			// Wait for ack so the test is deterministic.
			c.Recv(1, 9)
		} else {
			v, _ := c.Recv(0, 9)
			if v != "go" {
				t.Errorf("got %v", v)
			}
			c.Send(0, 9, "ack")
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 8
	var before, after atomic.Int32
	RunTimeout(t, watchdog, n, func(c *Comm) {
		before.Add(1)
		c.Barrier()
		if got := before.Load(); got != n {
			t.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), got)
		}
		after.Add(1)
	})
	if after.Load() != n {
		t.Fatalf("only %d ranks finished", after.Load())
	}
}

func TestBcast(t *testing.T) {
	RunTimeout(t, watchdog, 5, func(c *Comm) {
		var v any
		if c.Rank() == 2 {
			v = 42
		}
		got := c.Bcast(2, v)
		if got.(int) != 42 {
			t.Errorf("rank %d: bcast got %v", c.Rank(), got)
		}
	})
}

func TestGatherScatter(t *testing.T) {
	RunTimeout(t, watchdog, 4, func(c *Comm) {
		all := c.Gather(1, c.Rank()*10)
		if c.Rank() == 1 {
			for i, v := range all {
				if v.(int) != i*10 {
					t.Errorf("gather[%d] = %v", i, v)
				}
			}
			vals := make([]any, 4)
			for i := range vals {
				vals[i] = i + 100
			}
			got := c.Scatter(1, vals)
			if got.(int) != 101 {
				t.Errorf("root scatter got %v", got)
			}
		} else {
			if all != nil {
				t.Errorf("non-root gather returned %v", all)
			}
			got := c.Scatter(1, nil)
			if got.(int) != c.Rank()+100 {
				t.Errorf("rank %d scatter got %v", c.Rank(), got)
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	RunTimeout(t, watchdog, 6, func(c *Comm) {
		all := c.Allgather(c.Rank() * c.Rank())
		for i, v := range all {
			if v.(int) != i*i {
				t.Errorf("rank %d: allgather[%d] = %v", c.Rank(), i, v)
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	const n = 5
	RunTimeout(t, watchdog, n, func(c *Comm) {
		send := make([]any, n)
		for j := 0; j < n; j++ {
			send[j] = c.Rank()*100 + j
		}
		got := c.Alltoall(send)
		for i := 0; i < n; i++ {
			want := i*100 + c.Rank()
			if got[i].(int) != want {
				t.Errorf("rank %d: alltoall[%d] = %v, want %d", c.Rank(), i, got[i], want)
			}
		}
	})
}

func TestAlltoallvFloat64(t *testing.T) {
	const n = 4
	RunTimeout(t, watchdog, n, func(c *Comm) {
		send := make([][]float64, n)
		for j := 0; j < n; j++ {
			// Variable-length chunks: rank r sends j+1 copies of r to rank j.
			chunk := make([]float64, j+1)
			for k := range chunk {
				chunk[k] = float64(c.Rank())
			}
			send[j] = chunk
		}
		got := c.AlltoallvFloat64(send)
		for i := 0; i < n; i++ {
			if len(got[i]) != c.Rank()+1 {
				t.Fatalf("rank %d: chunk from %d has len %d, want %d", c.Rank(), i, len(got[i]), c.Rank()+1)
			}
			for _, v := range got[i] {
				if v != float64(i) {
					t.Errorf("rank %d: chunk from %d contains %v", c.Rank(), i, v)
				}
			}
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	RunTimeout(t, watchdog, 4, func(c *Comm) {
		v := float64(c.Rank() + 1) // 1,2,3,4
		sum, ok := c.ReduceFloat64(0, v, OpSum)
		if c.Rank() == 0 {
			if !ok || sum != 10 {
				t.Errorf("reduce sum = %v ok=%v", sum, ok)
			}
		} else if ok {
			t.Error("non-root got ok=true")
		}
		if got := c.AllreduceFloat64(v, OpMax); got != 4 {
			t.Errorf("allreduce max = %v", got)
		}
		if got := c.AllreduceFloat64(v, OpMin); got != 1 {
			t.Errorf("allreduce min = %v", got)
		}
		if got := c.AllreduceInt(c.Rank(), OpSum); got != 6 {
			t.Errorf("allreduce int sum = %v", got)
		}
	})
}

func TestSubCommunicator(t *testing.T) {
	RunTimeout(t, watchdog, 6, func(c *Comm) {
		// Evens form a subgroup.
		sub := c.Sub([]int{0, 2, 4})
		if c.Rank()%2 == 1 {
			if sub != nil {
				t.Errorf("odd rank %d got a sub-communicator", c.Rank())
			}
			return
		}
		if sub == nil {
			t.Fatalf("even rank %d got nil sub-communicator", c.Rank())
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			t.Errorf("sub rank = %d, want %d", sub.Rank(), wantRank)
		}
		// Collectives on the subgroup must only involve the subgroup.
		total := sub.AllreduceInt(c.Rank(), OpSum)
		if total != 6 { // 0+2+4
			t.Errorf("sub allreduce = %d", total)
		}
	})
}

func TestSubThenParentStillWorks(t *testing.T) {
	RunTimeout(t, watchdog, 4, func(c *Comm) {
		sub := c.Sub([]int{1, 3})
		c.Barrier()
		if sub != nil {
			sub.Barrier()
		}
		got := c.AllreduceInt(1, OpSum)
		if got != 4 {
			t.Errorf("parent allreduce after Sub = %d", got)
		}
	})
}

func TestWorldGroupOrdering(t *testing.T) {
	w := NewWorld(4)
	// Group with permuted ranks: group rank 0 is world rank 3.
	cs := w.Group([]int{3, 1, 0})
	if cs[0].WorldRank() != 3 || cs[2].WorldRank() != 0 {
		t.Fatalf("group ordering wrong: %d %d", cs[0].WorldRank(), cs[2].WorldRank())
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		cs[0].Send(2, 0, "x")
	}()
	go func() {
		defer wg.Done()
		v, src := cs[2].Recv(0, 0)
		if v != "x" || src != 0 {
			t.Errorf("got %v from %d", v, src)
		}
	}()
	wg.Wait()
}

func TestBlockingRecvActuallyBlocks(t *testing.T) {
	w := NewWorld(2)
	cs := w.Comms()
	done := make(chan struct{})
	go func() {
		cs[1].Recv(0, 0)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Recv returned with no message")
	case <-time.After(20 * time.Millisecond):
	}
	cs[0].Send(1, 0, nil)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Recv did not wake after Send")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewWorld(0)", func() { NewWorld(0) })
	w := NewWorld(2)
	cs := w.Comms()
	mustPanic("negative tag", func() { cs[0].Send(1, -1, nil) })
	mustPanic("send out of range", func() { cs[0].Send(5, 0, nil) })
	mustPanic("group out of range", func() { w.Group([]int{9}) })
}

func TestCommunicatorIsolation(t *testing.T) {
	// Two groups over the same world ranks are isolated traffic domains:
	// a message sent on one must never match a receive on the other, even
	// with identical (source, tag).
	w := NewWorld(2)
	g1 := w.Group([]int{0, 1})
	g2 := w.Group([]int{0, 1})
	g1[0].Send(1, 5, "on-g1")
	g2[0].Send(1, 5, "on-g2")
	if v, _ := g2[1].Recv(0, 5); v != "on-g2" {
		t.Errorf("g2 recv got %v", v)
	}
	if v, _ := g1[1].Recv(0, 5); v != "on-g1" {
		t.Errorf("g1 recv got %v", v)
	}
	// Concurrent collectives on both groups do not interfere.
	var wg sync.WaitGroup
	for _, cs := range [][]*Comm{g1, g2} {
		for _, c := range cs {
			wg.Add(1)
			go func(c *Comm) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if got := c.AllreduceInt(c.Rank(), OpSum); got != 1 {
						t.Errorf("allreduce = %d", got)
						return
					}
				}
			}(c)
		}
	}
	wg.Wait()
}

func TestSplit(t *testing.T) {
	RunTimeout(t, watchdog, 6, func(c *Comm) {
		// Evens form color 0, odds color 1.
		sub := c.Split(c.Rank() % 2)
		if sub == nil {
			t.Errorf("rank %d got nil", c.Rank())
			return
		}
		if sub.Size() != 3 {
			t.Errorf("rank %d: size %d", c.Rank(), sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Errorf("rank %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Collectives stay within the color.
		sum := sub.AllreduceInt(c.Rank(), OpSum)
		want := 6 // 0+2+4
		if c.Rank()%2 == 1 {
			want = 9 // 1+3+5
		}
		if sum != want {
			t.Errorf("rank %d: sum %d, want %d", c.Rank(), sum, want)
		}
	})
}

func TestSplitOptOut(t *testing.T) {
	RunTimeout(t, watchdog, 4, func(c *Comm) {
		color := 0
		if c.Rank() == 2 {
			color = -1 // opts out
		}
		sub := c.Split(color)
		if c.Rank() == 2 {
			if sub != nil {
				t.Error("opted-out rank got a communicator")
			}
			return
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: sub = %v", c.Rank(), sub)
		}
	})
}

func TestSplitAllDistinctColors(t *testing.T) {
	RunTimeout(t, watchdog, 3, func(c *Comm) {
		sub := c.Split(c.Rank() * 10)
		if sub == nil || sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("rank %d: singleton split wrong", c.Rank())
		}
	})
}

func TestRecvTimeoutExpires(t *testing.T) {
	w := NewWorld(2)
	cs := w.Comms()
	start := time.Now()
	if _, _, ok := cs[1].RecvTimeout(0, 0, 30*time.Millisecond); ok {
		t.Fatal("RecvTimeout returned ok with no message")
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("RecvTimeout returned before the timeout")
	}
}

func TestRecvTimeoutDelivers(t *testing.T) {
	RunTimeout(t, watchdog, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, "prompt")
		} else {
			v, src, ok := c.RecvTimeout(0, 3, watchdog)
			if !ok || v != "prompt" || src != 0 {
				t.Errorf("RecvTimeout = %v, %d, %v", v, src, ok)
			}
		}
	})
}

func TestRecvTimeoutWakesOnLateMessage(t *testing.T) {
	w := NewWorld(2)
	cs := w.Comms()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cs[0].Send(1, 0, "late")
	}()
	v, _, ok := cs[1].RecvTimeout(0, 0, watchdog)
	if !ok || v != "late" {
		t.Fatalf("RecvTimeout = %v, %v", v, ok)
	}
}

func TestRunTimeoutReportsDeadlock(t *testing.T) {
	// Drive the watchdog with a rigged testing.TB and a genuinely
	// deadlocked cohort (both ranks receive, nobody sends).
	rec := &recordingTB{TB: t}
	RunTimeout(rec, 50*time.Millisecond, 2, func(c *Comm) {
		c.Recv(1-c.Rank(), 0)
	})
	if !rec.failed {
		t.Fatal("watchdog did not fire on a deadlocked cohort")
	}
	if !strings.Contains(rec.message, "goroutine") {
		t.Fatalf("watchdog report lacks a goroutine dump:\n%s", rec.message)
	}
}

// recordingTB captures Fatalf instead of aborting, so the watchdog's
// failure path itself can be tested.
type recordingTB struct {
	testing.TB
	failed  bool
	message string
}

func (r *recordingTB) Fatalf(format string, args ...any) {
	r.failed = true
	r.message = fmt.Sprintf(format, args...)
}

func (r *recordingTB) Helper() {}
