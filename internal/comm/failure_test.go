package comm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestKillDropsTraffic(t *testing.T) {
	w := NewWorld(3)
	cs := w.Comms()

	// A message queued before the crash is discarded with the mailbox.
	cs[0].Send(1, 7, "doomed")
	if !w.Alive(1) {
		t.Fatal("rank 1 reported dead before Kill")
	}
	w.Kill(1)
	w.Kill(1) // idempotent
	if w.Alive(1) {
		t.Fatal("rank 1 reported alive after Kill")
	}
	if _, _, ok := cs[1].TryRecv(AnySource, AnyTag); ok {
		t.Fatal("queued message survived Kill")
	}

	// New traffic to the dead rank vanishes.
	cs[0].Send(1, 7, "late")
	if _, _, ok := cs[1].TryRecv(AnySource, AnyTag); ok {
		t.Fatal("message delivered to dead rank")
	}

	// Traffic from the dead rank vanishes too.
	cs[1].Send(2, 7, "ghost")
	if _, _, ok := cs[2].RecvTimeout(1, 7, 30*time.Millisecond); ok {
		t.Fatal("message delivered from dead rank")
	}

	// Survivors keep talking.
	cs[0].Send(2, 7, "fine")
	if v, _, ok := cs[2].RecvTimeout(0, 7, watchdog); !ok || v != "fine" {
		t.Fatalf("survivor traffic lost: %v, %v", v, ok)
	}
}

func TestBarrierTimeoutAllArrive(t *testing.T) {
	w := NewWorld(4)
	cs := w.Comms()
	var wg sync.WaitGroup
	errs := make([]error, len(cs))
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			missing, err := c.BarrierTimeout(watchdog)
			if len(missing) != 0 {
				t.Errorf("rank %d: missing = %v, want none", i, missing)
			}
			errs[i] = err
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("rank %d: BarrierTimeout = %v", i, err)
		}
	}
}

func TestBarrierTimeoutReportsMissingRank(t *testing.T) {
	w := NewWorld(4)
	cs := w.Comms()
	w.Kill(2)
	var wg sync.WaitGroup
	for i, c := range cs {
		if i == 2 {
			continue
		}
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			// Generous timeout: the non-root grace window is 2·d+500ms,
			// and under a fully loaded test machine (all packages in
			// parallel) the root goroutine can stall long enough to blow
			// a tight budget and misreport RootLost.
			missing, err := c.BarrierTimeout(300 * time.Millisecond)
			var bte *BarrierTimeoutError
			if !errors.As(err, &bte) {
				t.Errorf("rank %d: err = %v, want *BarrierTimeoutError", i, err)
				return
			}
			if bte.RootLost {
				t.Errorf("rank %d: RootLost with live root", i)
				return
			}
			if len(missing) != 1 || missing[0] != 2 {
				t.Errorf("rank %d: missing = %v, want [2]", i, missing)
			}
		}(i, c)
	}
	wg.Wait()
}

func TestBarrierTimeoutRootLost(t *testing.T) {
	w := NewWorld(3)
	cs := w.Comms()
	w.Kill(0)
	var wg sync.WaitGroup
	for i, c := range cs {
		if i == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			_, err := c.BarrierTimeout(50 * time.Millisecond)
			var bte *BarrierTimeoutError
			if !errors.As(err, &bte) || !bte.RootLost {
				t.Errorf("rank %d: err = %v, want RootLost", i, err)
			}
		}(i, c)
	}
	wg.Wait()
}
