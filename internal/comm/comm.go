// Package comm provides an in-process message-passing runtime with
// MPI-like semantics: a fixed set of ranks (one goroutine each), tagged
// point-to-point messages, communicator groups, and the collective
// operations the M×N middleware needs (barrier, broadcast, gather,
// allgather, reduce, alltoallv).
//
// The package substitutes for MPI in this reproduction: the redistribution
// and PRMI algorithms only depend on MPI's semantics — ranked processes,
// tagged ordered messages between pairs, and group collectives — all of
// which are preserved here. Receives block until a matching message
// arrives, so incorrect orderings deadlock exactly as they would under MPI
// (which the Figure 5 experiment relies on).
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mxn/internal/obs"
)

// Runtime instruments. The queue-depth gauge tracks messages queued in
// mailboxes process-wide (put minus take), the closest analogue of an MPI
// implementation's unexpected-message queue length; a persistently growing
// value means receivers are falling behind their senders.
var (
	mMsgsSent      = obs.Default().Counter("comm.msgs_sent")
	mMsgsRecv      = obs.Default().Counter("comm.msgs_recv")
	mRecvWaits     = obs.Default().Counter("comm.recv_timeouts_expired")
	mCollectives   = obs.Default().Counter("comm.collective_participations")
	mQueueDepth    = obs.Default().Gauge("comm.queue_depth")
	mRanksKilled   = obs.Default().Counter("comm.ranks_killed")
	mDroppedDead   = obs.Default().Counter("comm.msgs_dropped_dead_rank")
	mBarrierExpiry = obs.Default().Counter("comm.barrier_timeouts")
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// message is a queued point-to-point message. gid identifies the
// communicator group: like MPI communicators, distinct groups are isolated
// traffic domains even over the same ranks.
type message struct {
	from    int // world rank of sender
	tag     int
	gid     uint64
	payload any
}

// mailbox is the receive queue of one world rank.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.msgs = append(mb.msgs, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
	mMsgsSent.Inc()
	mQueueDepth.Add(1)
}

// take removes and returns the first message matching (group, from, tag),
// blocking until one arrives.
func (mb *mailbox) take(gid uint64, from, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if m.gid == gid && (from == AnySource || m.from == from) && (tag == AnyTag || m.tag == tag) {
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				mMsgsRecv.Inc()
				mQueueDepth.Add(-1)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// takeTimeout is take bounded by a deadline; ok reports whether a matching
// message arrived in time.
func (mb *mailbox) takeTimeout(gid uint64, from, tag int, d time.Duration) (message, bool) {
	deadline := time.Now().Add(d)
	// The waker takes the mutex so its broadcast cannot slip into the gap
	// between the waiter's deadline check and its cond.Wait.
	timer := time.AfterFunc(d, func() {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	})
	defer timer.Stop()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if m.gid == gid && (from == AnySource || m.from == from) && (tag == AnyTag || m.tag == tag) {
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				mMsgsRecv.Inc()
				mQueueDepth.Add(-1)
				return m, true
			}
		}
		if !time.Now().Before(deadline) {
			mRecvWaits.Inc()
			return message{}, false
		}
		mb.cond.Wait()
	}
}

// tryTake is the non-blocking variant of take.
func (mb *mailbox) tryTake(gid uint64, from, tag int) (message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.msgs {
		if m.gid == gid && (from == AnySource || m.from == from) && (tag == AnyTag || m.tag == tag) {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			mMsgsRecv.Inc()
			mQueueDepth.Add(-1)
			return m, true
		}
	}
	return message{}, false
}

// World is a set of ranks that can exchange messages. It plays the role
// of MPI_COMM_WORLD's underlying process set, except that — unlike MPI —
// it can grow: Grow admits new ranks at the top of the rank space so an
// online cohort resize (core.ProposeResize) has somewhere to put joiners.
//
// The rank array is held behind an atomic pointer: sends and receives
// load the current state with one atomic read (no lock on the hot path),
// and Grow installs a copied, extended state. Mailboxes and per-rank
// death flags are shared by pointer between states, so messages queued
// and Kill marks survive a concurrent grow.
type World struct {
	growMu sync.Mutex // serializes Grow
	state  atomic.Pointer[worldState]
}

// worldState is one immutable snapshot of the world's rank array. remote
// is nil for local ranks and names the ConnectPeer binding for ranks that
// live on the other side of a connection.
type worldState struct {
	boxes  []*mailbox
	dead   []*atomic.Bool
	remote []*RemotePeer
}

func newWorldState(n int) *worldState {
	st := &worldState{
		boxes:  make([]*mailbox, n),
		dead:   make([]*atomic.Bool, n),
		remote: make([]*RemotePeer, n),
	}
	for i := range st.boxes {
		st.boxes[i] = newMailbox()
		st.dead[i] = &atomic.Bool{}
	}
	return st
}

// NewWorld creates a world with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("comm: world size must be positive, got %d", n))
	}
	w := &World{}
	w.state.Store(newWorldState(n))
	return w
}

// st returns the current world snapshot.
func (w *World) st() *worldState { return w.state.Load() }

// Size returns the number of ranks currently in the world.
func (w *World) Size() int { return len(w.st().boxes) }

// Grow extends the world to newSize ranks, returning the world ranks
// that were added (empty when newSize equals the current size). The new
// ranks are alive with empty mailboxes; existing ranks, their queued
// messages, and their death marks are untouched, and communicators
// created before the grow keep working — a group is a fixed rank list,
// so growing the world never changes any existing communicator's
// membership (again the MPI model: new ranks only communicate through
// groups created after they exist). Shrinking is not a World operation:
// a departing rank is either simply abandoned (its mailbox idle) or
// Killed; the rank space, like an MPI world, never renumbers.
func (w *World) Grow(newSize int) []int {
	w.growMu.Lock()
	defer w.growMu.Unlock()
	cur := w.st()
	if newSize < len(cur.boxes) {
		panic(fmt.Sprintf("comm: Grow to %d below current world size %d", newSize, len(cur.boxes)))
	}
	if newSize == len(cur.boxes) {
		return nil
	}
	next := &worldState{
		boxes:  make([]*mailbox, newSize),
		dead:   make([]*atomic.Bool, newSize),
		remote: make([]*RemotePeer, newSize),
	}
	copy(next.boxes, cur.boxes)
	copy(next.dead, cur.dead)
	copy(next.remote, cur.remote)
	added := make([]int, 0, newSize-len(cur.boxes))
	for r := len(cur.boxes); r < newSize; r++ {
		next.boxes[r] = newMailbox()
		next.dead[r] = &atomic.Bool{}
		added = append(added, r)
	}
	w.state.Store(next)
	return added
}

// Kill marks a world rank crashed: its queued messages are discarded, and
// from now on every message sent to it or from it silently disappears —
// the observable behavior of a process that died without a FIN. Kill does
// not stop the rank's goroutine (goroutines cannot be killed); chaos
// harnesses pair Kill with a cooperative exit in the victim and a
// liveness detector (core.StartHeartbeats) on the survivors. Idempotent.
func (w *World) Kill(rank int) {
	st := w.st()
	if rank < 0 || rank >= len(st.boxes) {
		panic(fmt.Sprintf("comm: kill of rank %d outside world of size %d", rank, len(st.boxes)))
	}
	if st.dead[rank].Swap(true) {
		return
	}
	mRanksKilled.Inc()
	// A crashed process loses its unreceived messages with it.
	b := st.boxes[rank]
	b.mu.Lock()
	mQueueDepth.Add(-int64(len(b.msgs)))
	b.msgs = nil
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Alive reports whether a world rank has not been killed.
func (w *World) Alive(rank int) bool { return !w.st().dead[rank].Load() }

// Comms returns one communicator handle per world rank, all belonging to a
// single group spanning the whole world (the MPI_COMM_WORLD analogue).
func (w *World) Comms() []*Comm {
	ranks := make([]int, w.Size())
	for i := range ranks {
		ranks[i] = i
	}
	return w.Group(ranks)
}

// Group creates a new communicator over the given world ranks and returns
// one handle per member, in group order. Collectives on the returned
// communicators involve exactly these ranks.
func (w *World) Group(ranks []int) []*Comm {
	size := w.Size()
	g := &group{
		world: w,
		ranks: append([]int(nil), ranks...),
		gid:   nextGroupID.Add(1),
	}
	cs := make([]*Comm, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= size {
			panic(fmt.Sprintf("comm: rank %d outside world of size %d", r, size))
		}
		cs[i] = &Comm{group: g, rank: i}
	}
	return cs
}

// Run spawns n goroutines, one per rank of a fresh world-spanning
// communicator, and blocks until all have returned. It is the common way to
// stand up a parallel cohort in tests, examples and benchmarks.
func Run(n int, body func(c *Comm)) {
	w := NewWorld(n)
	cs := w.Comms()
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(c *Comm) {
			defer wg.Done()
			body(c)
		}(cs[i])
	}
	wg.Wait()
}

// nextGroupID hands out process-unique communicator identities.
var nextGroupID atomic.Uint64

// group is the shared state of one communicator.
type group struct {
	world *World
	ranks []int // group rank -> world rank
	gid   uint64
}

// Comm is one rank's handle on a communicator. All methods are relative to
// the group: Send/Recv peer arguments and collective roots are group ranks.
type Comm struct {
	group *group
	rank  int // this handle's rank within the group
}

// Rank returns the caller's rank within the communicator's group.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator's group.
func (c *Comm) Size() int { return len(c.group.ranks) }

// WorldRank returns the underlying world rank of this handle.
func (c *Comm) WorldRank() int { return c.group.ranks[c.rank] }

// Send delivers payload to group rank "to" with the given tag. Sends are
// buffered and never block. Tags must be non-negative; negative tags are
// reserved for internal use.
func (c *Comm) Send(to, tag int, payload any) {
	if tag < 0 {
		panic(fmt.Sprintf("comm: user tags must be non-negative, got %d", tag))
	}
	c.send(to, tag, payload)
}

// DeliverableLocal reports whether a message sent now to group rank "to"
// would be enqueued into an in-process mailbox: the destination resolves
// locally (no remote peer binding) and neither end is currently marked
// dead. The zero-copy transfer fast path uses it to decide whether a
// payload may be lent to the receiver by reference — an in-process
// mailbox delivers the same slice, so borrowing is sound; a remote or
// dead destination is not eligible. The answer is advisory: world state
// can change between the check and the send, with the same
// dropped-message consequences any unfenced transfer already accepts.
func (c *Comm) DeliverableLocal(to int) bool {
	if to < 0 || to >= len(c.group.ranks) {
		return false
	}
	st := c.group.world.st()
	wr := c.group.ranks[to]
	wme := c.group.ranks[c.rank]
	return st.remote[wr] == nil && !st.dead[wr].Load() && !st.dead[wme].Load()
}

func (c *Comm) send(to, tag int, payload any) {
	if to < 0 || to >= len(c.group.ranks) {
		panic(fmt.Sprintf("comm: send to rank %d outside group of size %d", to, len(c.group.ranks)))
	}
	st := c.group.world.st()
	wr := c.group.ranks[to]
	wme := c.group.ranks[c.rank]
	// A dead rank neither produces nor consumes traffic: messages to or
	// from it vanish, exactly as they would with a crashed MPI process.
	if st.dead[wr].Load() || st.dead[wme].Load() {
		mDroppedDead.Inc()
		return
	}
	if rp := st.remote[wr]; rp != nil {
		rp.forward(wme, wr, tag, c.group.gid, payload)
		return
	}
	st.boxes[wr].put(message{from: wme, tag: tag, gid: c.group.gid, payload: payload})
}

// Recv blocks until a message with a matching source and tag arrives and
// returns its payload and actual source group rank. Use AnySource/AnyTag as
// wildcards.
func (c *Comm) Recv(from, tag int) (payload any, source int) {
	m := c.recv(from, tag)
	return m.payload, c.groupRankOf(m.from)
}

func (c *Comm) recv(from, tag int) message {
	wfrom := from
	if from != AnySource {
		if from < 0 || from >= len(c.group.ranks) {
			panic(fmt.Sprintf("comm: recv from rank %d outside group of size %d", from, len(c.group.ranks)))
		}
		wfrom = c.group.ranks[from]
	}
	wr := c.group.ranks[c.rank]
	return c.group.world.st().boxes[wr].take(c.group.gid, wfrom, tag)
}

// RecvTimeout is Recv bounded by a timeout: ok reports whether a matching
// message arrived before it expired. It is the primitive the PRMI layer
// uses to turn silent link failures into typed timeout errors.
func (c *Comm) RecvTimeout(from, tag int, d time.Duration) (payload any, source int, ok bool) {
	wfrom := from
	if from != AnySource {
		if from < 0 || from >= len(c.group.ranks) {
			panic(fmt.Sprintf("comm: recv from rank %d outside group of size %d", from, len(c.group.ranks)))
		}
		wfrom = c.group.ranks[from]
	}
	wr := c.group.ranks[c.rank]
	m, ok := c.group.world.st().boxes[wr].takeTimeout(c.group.gid, wfrom, tag, d)
	if !ok {
		return nil, 0, false
	}
	return m.payload, c.groupRankOf(m.from), true
}

// TryRecv is the non-blocking variant of Recv. ok reports whether a
// matching message was available.
func (c *Comm) TryRecv(from, tag int) (payload any, source int, ok bool) {
	wfrom := from
	if from != AnySource {
		wfrom = c.group.ranks[from]
	}
	wr := c.group.ranks[c.rank]
	m, ok := c.group.world.st().boxes[wr].tryTake(c.group.gid, wfrom, tag)
	if !ok {
		return nil, 0, false
	}
	return m.payload, c.groupRankOf(m.from), true
}

func (c *Comm) groupRankOf(worldRank int) int {
	for g, wr := range c.group.ranks {
		if wr == worldRank {
			return g
		}
	}
	return -1
}

// Sub creates a sub-communicator over the given group ranks of c. Every
// member of the subgroup must call Sub with the identical rank list; each
// caller receives its own handle. Callers not in ranks receive nil.
//
// Sub is collective over c's full group so that the shared state is built
// exactly once.
func (c *Comm) Sub(ranks []int) *Comm {
	// Rank 0 of the parent builds the subgroup communicators and scatters
	// the handles; this mirrors MPI_Comm_create's collective nature.
	worldRanks := make([]int, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= len(c.group.ranks) {
			panic(fmt.Sprintf("comm: Sub rank %d outside group of size %d", r, len(c.group.ranks)))
		}
		worldRanks[i] = c.group.ranks[r]
	}
	var mine *Comm
	if c.rank == 0 {
		subs := c.group.world.Group(worldRanks)
		handles := make([]any, len(c.group.ranks))
		for i, r := range ranks {
			handles[r] = subs[i]
		}
		for peer := 1; peer < len(c.group.ranks); peer++ {
			c.send(peer, tagSub, handles[peer])
		}
		if h := handles[0]; h != nil {
			mine = h.(*Comm)
		}
	} else {
		m := c.recv(0, tagSub)
		if m.payload != nil {
			mine = m.payload.(*Comm)
		}
	}
	return mine
}

// Split partitions the communicator by color, like MPI_Comm_split: every
// rank of the group must call it; ranks passing the same non-negative
// color form a new communicator, ordered by their rank in the parent.
// Ranks passing a negative color opt out and receive nil.
//
// Unlike Sub, Split is uniformly collective — no rank needs to know any
// other rank's membership — which makes it the safe way to carve a world
// into model cohorts.
func (c *Comm) Split(color int) *Comm {
	colors := c.Allgather(color)
	var mine *Comm
	if c.rank == 0 {
		// Build one subgroup per distinct non-negative color, members in
		// parent-rank order.
		groupsByColor := map[int][]int{}
		order := []int{}
		for r, v := range colors {
			col := v.(int)
			if col < 0 {
				continue
			}
			if _, seen := groupsByColor[col]; !seen {
				order = append(order, col)
			}
			groupsByColor[col] = append(groupsByColor[col], r)
		}
		handles := make([]any, len(c.group.ranks))
		for _, col := range order {
			members := groupsByColor[col]
			worldRanks := make([]int, len(members))
			for i, r := range members {
				worldRanks[i] = c.group.ranks[r]
			}
			subs := c.group.world.Group(worldRanks)
			for i, r := range members {
				handles[r] = subs[i]
			}
		}
		for peer := 1; peer < len(c.group.ranks); peer++ {
			c.send(peer, tagSplit, handles[peer])
		}
		if h := handles[0]; h != nil {
			mine = h.(*Comm)
		}
	} else {
		m := c.recv(0, tagSplit)
		if m.payload != nil {
			mine = m.payload.(*Comm)
		}
	}
	return mine
}

// Internal tags. User tags are non-negative, so any negative constant is
// collision-free; distinct constants keep distinct protocols from matching
// each other's messages.
const (
	tagSub = -1000 - iota
	tagSplit
	tagBcast
	tagGather
	tagScatter
	tagAlltoall
	tagBarrierArrive
	tagBarrierResult
)
