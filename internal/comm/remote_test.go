package comm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mxn/internal/transport"
)

// coupledWorlds builds the canonical ConnectPeer topology: two worlds of
// nA+nB ranks each in the unified rank space, side A owning [0,nA) and
// side B owning [nA,nA+nB), joined over an in-memory transport pipe.
func coupledWorlds(t *testing.T, nA, nB int) (wa, wb *World, pa, pb *RemotePeer) {
	t.Helper()
	total := nA + nB
	wa = NewWorld(total)
	wb = NewWorld(total)
	a, b := transport.Pipe()
	bRanks := make([]int, 0, nB)
	for r := nA; r < total; r++ {
		bRanks = append(bRanks, r)
	}
	aRanks := make([]int, 0, nA)
	for r := 0; r < nA; r++ {
		aRanks = append(aRanks, r)
	}
	pa = wa.ConnectPeer(a, bRanks)
	pb = wb.ConnectPeer(b, aRanks)
	t.Cleanup(func() { pa.Close(); pb.Close() })
	return wa, wb, pa, pb
}

// sharedComms returns the handles of one SharedGroup spanning the whole
// unified rank space on both sides.
func sharedComms(wa, wb *World, id uint64) (csA, csB []*Comm) {
	total := wa.Size()
	ranks := make([]int, total)
	for i := range ranks {
		ranks[i] = i
	}
	return wa.SharedGroup(id, ranks), wb.SharedGroup(id, ranks)
}

func TestConnectPeerForwardsAcrossWorlds(t *testing.T) {
	wa, wb, _, _ := coupledWorlds(t, 2, 2)
	csA, csB := sharedComms(wa, wb, 7)

	// Side A rank 0 sends a spread of generic payload types to side B
	// rank 2, which echoes each back with the same tag.
	payloads := []any{
		int(42), int64(-7), uint64(1 << 60), "hello", 3.5,
		[]float64{1, 2, 3}, []byte{9, 8}, []int{4, 5}, nil, true,
	}
	done := make(chan error, 1)
	go func() {
		c := csB[2]
		for range payloads {
			v, src := c.Recv(0, 1)
			c.Send(src, 2, v)
		}
		done <- nil
	}()
	c := csA[0]
	for i, p := range payloads {
		c.Send(2, 1, p)
		got, src := c.Recv(2, 2)
		if src != 2 {
			t.Fatalf("payload %d: echo source = %d, want 2", i, src)
		}
		switch want := p.(type) {
		case []float64:
			g := got.([]float64)
			if len(g) != len(want) {
				t.Fatalf("payload %d: %v != %v", i, got, p)
			}
		case []byte:
			g := got.([]byte)
			if len(g) != len(want) {
				t.Fatalf("payload %d: %v != %v", i, got, p)
			}
		case []int:
			g := got.([]int)
			if len(g) != len(want) {
				t.Fatalf("payload %d: %v != %v", i, got, p)
			}
		default:
			if got != p {
				t.Fatalf("payload %d: round-tripped %v (%T), want %v (%T)", i, got, got, p, p)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSharedGroupCollectiveSpansWorlds runs a barrier and an allgather
// with two goroutines per side: the collective protocol's internal
// messages (arrivals, results, gathered values) all cross the wire
// through the generic codec.
func TestSharedGroupCollectiveSpansWorlds(t *testing.T) {
	wa, wb, _, _ := coupledWorlds(t, 2, 2)
	csA, csB := sharedComms(wa, wb, 9)

	var wg sync.WaitGroup
	errs := make(chan string, 4)
	body := func(c *Comm) {
		defer wg.Done()
		c.Barrier()
		got := c.Allgather(c.Rank() * 10)
		for r, v := range got {
			if v.(int) != r*10 {
				errs <- "allgather mismatch"
				return
			}
		}
	}
	wg.Add(4)
	go body(csA[0])
	go body(csA[1])
	go body(csB[2])
	go body(csB[3])
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestSharedGroupIsolatesTraffic checks that two shared groups over the
// same ranks are distinct traffic domains across the wire, like any two
// communicators.
func TestSharedGroupIsolatesTraffic(t *testing.T) {
	wa, wb, _, _ := coupledWorlds(t, 1, 1)
	g1A, g1B := sharedComms(wa, wb, 1)
	_, g2B := sharedComms(wa, wb, 2)

	g1A[0].Send(1, 5, "group1")
	v, _ := g1B[1].Recv(0, 5)
	if v != "group1" {
		t.Fatalf("group 1 recv = %v", v)
	}
	if _, _, ok := g2B[1].TryRecv(0, 5); ok {
		t.Fatal("message leaked into a different shared group")
	}
}

func TestConnectPeerLossKillsBoundRanks(t *testing.T) {
	wa, wb, pa, pb := coupledWorlds(t, 2, 2)

	// Tearing down side A's binding closes the pipe: side B's pump sees a
	// closed conn (a permanent loss) and must kill its bound ranks.
	pa.Close()
	select {
	case <-pb.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("peer B never observed the loss")
	}
	if err := pb.Err(); err == nil || !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("peer B error = %v, want ErrClosed", err)
	}
	for r := 0; r < 2; r++ {
		if wb.Alive(r) {
			t.Fatalf("world B rank %d still alive after peer loss", r)
		}
		if wa.Alive(r + 2) {
			t.Fatalf("world A rank %d still alive after Close", r+2)
		}
	}
	// Local ranks stay alive; sends to the lost ranks are dropped, not
	// wedged or panicking.
	if !wb.Alive(2) || !wb.Alive(3) {
		t.Fatal("local ranks died with the peer")
	}
	cs := wb.SharedGroup(3, []int{0, 1, 2, 3})
	cs[2].Send(0, 1, "into the void")
	if _, _, ok := cs[2].TryRecv(0, AnyTag); ok {
		t.Fatal("received from a dead remote rank")
	}
}

// TestConnectPeerSurvivesWorldGrow checks that Grow preserves remote
// bindings: the grown state must keep forwarding to previously bound
// ranks.
func TestConnectPeerSurvivesWorldGrow(t *testing.T) {
	wa, wb, _, _ := coupledWorlds(t, 1, 1)
	wa.Grow(4) // B's world stays size 2; the shared group spans [0,1]

	csA := wa.SharedGroup(4, []int{0, 1})
	csB := wb.SharedGroup(4, []int{0, 1})
	csA[0].Send(1, 1, "post-grow")
	v, _ := csB[1].Recv(0, 1)
	if v != "post-grow" {
		t.Fatalf("recv after grow = %v", v)
	}
}

func TestConnectPeerRejectsDoubleBinding(t *testing.T) {
	w := NewWorld(2)
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	rp := w.ConnectPeer(a, []int{1})
	defer rp.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("double binding did not panic")
		}
	}()
	w.ConnectPeer(b, []int{1})
}
