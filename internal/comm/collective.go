package comm

import (
	"fmt"
	"sort"
	"time"
)

// Collective operations. Like their MPI counterparts, these must be called
// by every rank of the communicator's group, and every rank must execute
// the same sequence of collectives. Because point-to-point delivery between
// a pair of ranks is FIFO per tag, successive collectives by the same group
// cannot cross-match and need no epoch counters.
//
// Every exported collective increments comm.collective_participations
// exactly once per calling rank; composite collectives (Allgather,
// Barrier, the reductions) delegate to unexported helpers so their
// building blocks are not double-counted.

// Barrier blocks until every rank of the group has entered it.
func (c *Comm) Barrier() {
	mCollectives.Inc()
	c.allgather(nil)
}

// BarrierTimeoutError reports a barrier that did not complete: either some
// ranks failed to arrive within the deadline (Missing lists them, in group
// rank order), or the coordinating rank 0 itself never answered
// (RootLost). It is the typed evidence chaos tests use to assert a clean
// abort instead of a deadlock.
type BarrierTimeoutError struct {
	Missing  []int
	RootLost bool
}

func (e *BarrierTimeoutError) Error() string {
	if e.RootLost {
		return "comm: barrier timed out: coordinator (group rank 0) did not answer"
	}
	return fmt.Sprintf("comm: barrier timed out: ranks %v failed to arrive", e.Missing)
}

// BarrierTimeout is Barrier bounded by a deadline: it blocks until every
// rank of the group has entered it or until d has elapsed at the
// coordinator, whichever comes first. On success it returns (nil, nil); if
// some ranks never arrived, every rank that did arrive receives the same
// *BarrierTimeoutError listing the missing group ranks.
//
// Group rank 0 coordinates: it collects arrivals for up to d, then
// broadcasts the outcome. Non-root ranks wait up to 2·d plus a grace
// period for that outcome, so ranks entering at slightly different times
// still agree; a non-root rank that never hears back (rank 0 died) reports
// RootLost. Like Barrier, every live rank of the group must call it.
func (c *Comm) BarrierTimeout(d time.Duration) ([]int, error) {
	mCollectives.Inc()
	if c.Size() == 1 {
		return nil, nil
	}
	wme := c.group.ranks[c.rank]
	if c.rank != 0 {
		c.send(0, tagBarrierArrive, nil)
		wait := 2*d + 500*time.Millisecond
		m, ok := c.group.world.st().boxes[wme].takeTimeout(c.group.gid, c.group.ranks[0], tagBarrierResult, wait)
		if !ok {
			mBarrierExpiry.Inc()
			return nil, &BarrierTimeoutError{RootLost: true}
		}
		missing := m.payload.([]int)
		if len(missing) == 0 {
			return nil, nil
		}
		return missing, &BarrierTimeoutError{Missing: missing}
	}

	arrived := make([]bool, c.Size())
	arrived[0] = true
	need := c.Size() - 1
	deadline := time.Now().Add(d)
	for need > 0 {
		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		m, ok := c.group.world.st().boxes[wme].takeTimeout(c.group.gid, AnySource, tagBarrierArrive, remain)
		if !ok {
			break
		}
		if g := c.groupRankOf(m.from); g >= 0 && !arrived[g] {
			arrived[g] = true
			need--
		}
	}
	missing := []int{}
	for g, ok := range arrived {
		if !ok {
			missing = append(missing, g)
		}
	}
	sort.Ints(missing)
	for peer := 1; peer < c.Size(); peer++ {
		c.send(peer, tagBarrierResult, missing)
	}
	if len(missing) == 0 {
		return nil, nil
	}
	mBarrierExpiry.Inc()
	return missing, &BarrierTimeoutError{Missing: missing}
}

// Bcast distributes root's value to every rank and returns it. Non-root
// callers pass any value (conventionally nil); the root's value wins.
func (c *Comm) Bcast(root int, v any) any {
	mCollectives.Inc()
	return c.bcast(root, v)
}

func (c *Comm) bcast(root int, v any) any {
	if c.Size() == 1 {
		return v
	}
	if c.rank == root {
		for peer := 0; peer < c.Size(); peer++ {
			if peer != root {
				c.send(peer, tagBcast, v)
			}
		}
		return v
	}
	m := c.recv(root, tagBcast)
	return m.payload
}

// Gather collects one value from every rank at root. At the root the
// returned slice is indexed by group rank; at other ranks it is nil.
func (c *Comm) Gather(root int, v any) []any {
	mCollectives.Inc()
	return c.gather(root, v)
}

func (c *Comm) gather(root int, v any) []any {
	if c.rank != root {
		c.send(root, tagGather, v)
		return nil
	}
	out := make([]any, c.Size())
	out[c.rank] = v
	for peer := 0; peer < c.Size(); peer++ {
		if peer == root {
			continue
		}
		m := c.recv(peer, tagGather)
		out[peer] = m.payload
	}
	return out
}

// Allgather collects one value from every rank at every rank. The returned
// slice is indexed by group rank.
func (c *Comm) Allgather(v any) []any {
	mCollectives.Inc()
	return c.allgather(v)
}

func (c *Comm) allgather(v any) []any {
	all := c.gather(0, v)
	got := c.bcast(0, all)
	return got.([]any)
}

// Scatter distributes values[i] from root to group rank i and returns the
// caller's element. At the root, values must have length Size(); elsewhere
// it is ignored.
func (c *Comm) Scatter(root int, values []any) any {
	mCollectives.Inc()
	if c.rank == root {
		if len(values) != c.Size() {
			panic(fmt.Sprintf("comm: Scatter needs %d values, got %d", c.Size(), len(values)))
		}
		for peer := 0; peer < c.Size(); peer++ {
			if peer != root {
				c.send(peer, tagScatter, values[peer])
			}
		}
		return values[root]
	}
	m := c.recv(root, tagScatter)
	return m.payload
}

// Alltoall sends values[j] to group rank j and returns the values received
// from every rank, indexed by source rank. values must have length Size().
func (c *Comm) Alltoall(values []any) []any {
	mCollectives.Inc()
	return c.alltoall(values)
}

func (c *Comm) alltoall(values []any) []any {
	if len(values) != c.Size() {
		panic(fmt.Sprintf("comm: Alltoall needs %d values, got %d", c.Size(), len(values)))
	}
	out := make([]any, c.Size())
	out[c.rank] = values[c.rank]
	for peer := 0; peer < c.Size(); peer++ {
		if peer != c.rank {
			c.send(peer, tagAlltoall, values[peer])
		}
	}
	for peer := 0; peer < c.Size(); peer++ {
		if peer != c.rank {
			m := c.recv(peer, tagAlltoall)
			out[peer] = m.payload
		}
	}
	return out
}

// AlltoallvFloat64 is the irregular all-to-all exchange the DCA framework
// exposes to applications: send[j] goes to rank j, and the result is
// indexed by source rank. Unlike MPI no displacement bookkeeping is needed
// because slices carry their lengths.
func (c *Comm) AlltoallvFloat64(send [][]float64) [][]float64 {
	mCollectives.Inc()
	vals := make([]any, len(send))
	for i, s := range send {
		vals[i] = s
	}
	got := c.alltoall(vals)
	out := make([][]float64, len(got))
	for i, g := range got {
		if g != nil {
			out[i] = g.([]float64)
		}
	}
	return out
}

// AlltoallvBytes is AlltoallvFloat64 for raw byte payloads.
func (c *Comm) AlltoallvBytes(send [][]byte) [][]byte {
	mCollectives.Inc()
	vals := make([]any, len(send))
	for i, s := range send {
		vals[i] = s
	}
	got := c.alltoall(vals)
	out := make([][]byte, len(got))
	for i, g := range got {
		if g != nil {
			out[i] = g.([]byte)
		}
	}
	return out
}

// ReduceOp names a reduction operator for ReduceFloat64/AllreduceFloat64.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

func (op ReduceOp) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("comm: unknown reduce op %d", op))
}

// ReduceFloat64 folds one float64 per rank at root. Non-root callers
// receive 0 and ok=false.
func (c *Comm) ReduceFloat64(root int, v float64, op ReduceOp) (float64, bool) {
	mCollectives.Inc()
	return c.reduceFloat64(root, v, op)
}

func (c *Comm) reduceFloat64(root int, v float64, op ReduceOp) (float64, bool) {
	all := c.gather(root, v)
	if all == nil {
		return 0, false
	}
	acc := all[0].(float64)
	for _, x := range all[1:] {
		acc = op.apply(acc, x.(float64))
	}
	return acc, true
}

// AllreduceFloat64 folds one float64 per rank and returns the result at
// every rank.
func (c *Comm) AllreduceFloat64(v float64, op ReduceOp) float64 {
	mCollectives.Inc()
	r, _ := c.reduceFloat64(0, v, op)
	got := c.bcast(0, r)
	return got.(float64)
}

// AllreduceInt folds one int per rank with OpSum/OpMin/OpMax semantics and
// returns the result at every rank.
func (c *Comm) AllreduceInt(v int, op ReduceOp) int {
	mCollectives.Inc()
	r, _ := c.reduceFloat64(0, float64(v), op)
	got := c.bcast(0, r)
	return int(got.(float64))
}
