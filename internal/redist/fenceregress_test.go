package redist

import (
	"errors"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/schedule"
)

// Regression: a FailStrict source-side abort on a dead destination used to
// return *core.ErrRankDown before entering the receive phase. A rank that
// is both a source and a destination then left its peers' already-posted
// messages queued under dataTag, and the next transfer on the same tag
// consumed them as its own whenever the element counts matched — silent
// corruption, not even an error. The abort must run the receive phase in
// drain mode (with the usual give-up timeout) before returning.
func TestFencedStrictSendAbortDrainsReceives(t *testing.T) {
	// Group ranks: 0 = source rank 0; 1 = source rank 1 AND destination
	// rank 0; 2 = destination rank 1, dead. Aligned Block→Block, so the
	// pairs are 0→0 and 1→1: group 1's send hits the dead rank while
	// group 0's message to it is already queued.
	src := tpl(t, []int{8}, dad.BlockAxis(2))
	dst := tpl(t, []int{8}, dad.BlockAxis(2))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	cs := comm.NewWorld(3).Comms()
	mem := core.NewMembership(3)
	mem.MarkDown(2)
	lay := Layout{SrcBase: 0, DstBase: 1}
	fo := FenceOpts{Membership: mem, Policy: FailStrict, PollInterval: time.Millisecond}
	srcLocals := fillByGlobal(src)

	// Group 0 is a pure source with a live destination: posts and returns.
	if _, err := ExchangeFenced(cs[0], s, lay, srcLocals[0], nil, 0, fo); err != nil {
		t.Fatalf("pure source: %v", err)
	}
	// Group 1 aborts on its dead destination but must still drain the
	// message group 0 just posted.
	dl := make([]float64, dst.LocalCount(0))
	_, err = ExchangeFenced(cs[1], s, lay, srcLocals[1], dl, 0, fo)
	var down *core.ErrRankDown
	if !errors.As(err, &down) {
		t.Fatalf("abort: err = %v, want *core.ErrRankDown", err)
	}
	if down.Rank != 2 {
		t.Errorf("abort blamed rank %d, want 2", down.Rank)
	}

	// Transfer 2 reuses tag 0 between groups 0 and 1. Its single pairwise
	// message carries 4 elements — the same count as transfer 1's
	// leftover, so without the drain this consumes stale data with no
	// error at all.
	src2 := tpl(t, []int{4}, dad.BlockAxis(1))
	dst2 := tpl(t, []int{4}, dad.BlockAxis(1))
	s2, err := schedule.Build(src2, dst2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 101, 102, 103}
	if err := Exchange(cs[0], s2, lay, want, nil, 0); err != nil {
		t.Fatalf("transfer 2 source: %v", err)
	}
	dl2 := make([]float64, 4)
	if err := Exchange(cs[1], s2, lay, nil, dl2, 0); err != nil {
		t.Fatalf("transfer 2 destination: %v", err)
	}
	for i := range want {
		if dl2[i] != want[i] {
			t.Fatalf("transfer 2 got %v, want %v: transfer 1's abort left its messages queued", dl2, want)
		}
	}
}

// Regression: the fenced epoch check only rejected messages OLDER than the
// receiver's entry epoch. A message stamped with a NEWER epoch means the
// peer has already re-planned past a failure this rank has not observed
// yet — consuming it against the stale local plan corrupts data silently
// whenever the element counts happen to match. It must surface as a typed
// *StaleLocalEpochError instead.
func TestFencedRejectsFutureEpoch(t *testing.T) {
	src := tpl(t, []int{4}, dad.BlockAxis(1))
	dst := tpl(t, []int{4}, dad.BlockAxis(1))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	lay := Layout{SrcBase: 0, DstBase: 1}

	checkErr := func(t *testing.T, err error, transfer string, rank, peer int) {
		t.Helper()
		var sle *StaleLocalEpochError
		if !errors.As(err, &sle) {
			t.Fatalf("err = %v, want *StaleLocalEpochError", err)
		}
		if sle.Transfer != transfer || sle.Rank != rank || sle.Peer != peer {
			t.Errorf("error attribution = %+v, want Transfer=%q Rank=%d Peer=%d", sle, transfer, rank, peer)
		}
		if sle.Local != 1 || sle.Remote != 2 {
			t.Errorf("epochs = local %d remote %d, want 1 and 2", sle.Local, sle.Remote)
		}
	}

	t.Run("exchange", func(t *testing.T) {
		cs := comm.NewWorld(2).Comms()
		mem := core.NewMembership(2) // epoch 1; receiver enters here
		fut := newMsg[float64](2, 4) // a peer one epoch ahead
		for i := range elemsOf[float64](fut.data, 4) {
			elemsOf[float64](fut.data, 4)[i] = -1
		}
		cs[0].Send(1, 0, fut)

		dl := []float64{-5, -5, -5, -5}
		fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond}
		_, err := ExchangeFenced(cs[1], s, lay, nil, dl, 0, fo)
		checkErr(t, err, "exchange", 0, 0)
		for _, v := range dl {
			if v != -5 {
				t.Fatalf("destination buffer modified by future-epoch message: %v", dl)
			}
		}
	})

	t.Run("exchange-budgeted", func(t *testing.T) {
		cs := comm.NewWorld(2).Comms()
		mem := core.NewMembership(2)
		// Budget 32 → 2-element chunks; inject the first chunk of a
		// future-epoch round.
		fut := newMsg[float64](2, 2)
		cs[0].Send(1, 0, fut)

		dl := []float64{-5, -5, -5, -5}
		fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond, MaxBytesInFlight: 32}
		_, err := ExchangeFenced(cs[1], s, lay, nil, dl, 0, fo)
		checkErr(t, err, "exchange", 0, 0)
		for _, v := range dl {
			if v != -5 {
				t.Fatalf("destination buffer modified by future-epoch chunk: %v", dl)
			}
		}
	})

	t.Run("linear-request", func(t *testing.T) {
		// The receiver-driven request phase has the same hazard on the
		// source side: a request stamped ahead of the source's entry
		// epoch means the source's owned view is stale.
		srcLin := linear.NewRowMajor(src)
		dstLin := linear.NewRowMajor(dst)
		cs := comm.NewWorld(2).Comms()
		mem := core.NewMembership(2)
		cs[1].Send(0, 0, linRequest{dstRank: 0, need: linear.Set{{Lo: 0, Hi: 4}}, epoch: 2})

		fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond}
		sl := []float64{0, 1, 2, 3}
		_, err := LinearExchangeFenced(cs[0], srcLin, dstLin, lay, 1, 1, sl, nil, 0, fo)
		checkErr(t, err, "linear", 0, 0)
	})
}

// Metric consistency: mMsgsRecv means "messages taken off the wire" on
// every path — fenced and unfenced count at the same point, and discarded
// stale messages are counted (plus their own discard counter) instead of
// bypassing accounting.
func TestReceiveMetricsConsistent(t *testing.T) {
	src := tpl(t, []int{8}, dad.BlockAxis(2))
	dst := tpl(t, []int{8}, dad.CyclicAxis(2))

	t.Run("unfenced-clean", func(t *testing.T) {
		sent0, recv0 := mMsgsSent.Value(), mMsgsRecv.Value()
		got := runBudgetExchangeT(t, src, dst, func(v float64) float64 { return v }, 0, false, []int{0, 1, 2, 3})
		verify(t, dst, got)
		dSent, dRecv := mMsgsSent.Value()-sent0, mMsgsRecv.Value()-recv0
		if dSent != 4 || dRecv != 4 {
			t.Errorf("clean transfer: sent %d recv %d, want 4 and 4", dSent, dRecv)
		}
	})

	t.Run("fenced-clean", func(t *testing.T) {
		sent0, recv0 := mMsgsSent.Value(), mMsgsRecv.Value()
		got := runBudgetExchangeT(t, src, dst, func(v float64) float64 { return v }, 0, true, []int{0, 1, 2, 3})
		verify(t, dst, got)
		dSent, dRecv := mMsgsSent.Value()-sent0, mMsgsRecv.Value()-recv0
		if dSent != 4 || dRecv != 4 {
			t.Errorf("clean fenced transfer: sent %d recv %d, want 4 and 4", dSent, dRecv)
		}
	})

	t.Run("stale-discard-counted", func(t *testing.T) {
		// One stale injected message + one real message: both come off
		// the wire, one is discarded.
		src1 := tpl(t, []int{4}, dad.BlockAxis(1))
		dst1 := tpl(t, []int{4}, dad.BlockAxis(1))
		s, err := schedule.Build(src1, dst1)
		if err != nil {
			t.Fatal(err)
		}
		cs := comm.NewWorld(3).Comms()
		mem := core.NewMembership(3)
		mem.MarkDown(2) // epoch 2

		stale := newMsg[float64](1, 4)
		cs[0].Send(1, 0, stale)

		recv0, stale0 := mMsgsRecv.Value(), mStaleEpoch.Value()
		lay := Layout{SrcBase: 0, DstBase: 1}
		fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond}
		sl := []float64{10, 11, 12, 13}
		if _, err := ExchangeFenced(cs[0], s, lay, sl, nil, 0, fo); err != nil {
			t.Fatalf("source: %v", err)
		}
		dl := make([]float64, 4)
		if _, err := ExchangeFenced(cs[1], s, lay, nil, dl, 0, fo); err != nil {
			t.Fatalf("destination: %v", err)
		}
		dRecv, dStale := mMsgsRecv.Value()-recv0, mStaleEpoch.Value()-stale0
		if dStale != 1 {
			t.Errorf("stale discards = %d, want 1", dStale)
		}
		if dRecv != 2 {
			t.Errorf("messages received = %d, want 2 (stale discard must be counted)", dRecv)
		}
	})

	t.Run("budgeted-chunks-and-acks", func(t *testing.T) {
		// Single pair, 8 elements, budget 32 → 2-element chunks, one
		// chunk per round: 4 chunks, 4 rounds, 4 acks, all matched.
		src1 := tpl(t, []int{8}, dad.BlockAxis(1))
		dst1 := tpl(t, []int{8}, dad.BlockAxis(1))
		chunks0, rounds0 := mChunksSent.Value(), mRoundsSent.Value()
		ackS0, ackR0 := mAcksSent.Value(), mAcksRecv.Value()
		recv0 := mMsgsRecv.Value()
		got := runBudgetExchangeT(t, src1, dst1, func(v float64) float64 { return v }, 32, false, []int{0, 1})
		verify(t, dst1, got)
		if d := mChunksSent.Value() - chunks0; d != 4 {
			t.Errorf("chunks sent = %d, want 4", d)
		}
		if d := mRoundsSent.Value() - rounds0; d != 4 {
			t.Errorf("rounds sent = %d, want 4", d)
		}
		if dS, dR := mAcksSent.Value()-ackS0, mAcksRecv.Value()-ackR0; dS != 4 || dR != 4 {
			t.Errorf("acks sent/recv = %d/%d, want 4/4", dS, dR)
		}
		if d := mMsgsRecv.Value() - recv0; d != 4 {
			t.Errorf("data messages received = %d, want 4 (acks are counted separately)", d)
		}
	})
}

// Zero-element coverage: ranks that own nothing pass nil buffers, and
// pairwise messages with zero elements (nil pooled buffer) travel every
// path — including the budgeted round splitter, which must never emit an
// empty round for them.
func TestZeroElementRanksAndMessages(t *testing.T) {
	// Source rank 0 owns zero elements under the generalized-block
	// distribution, so its local buffer is nil.
	src := tpl(t, []int{6}, dad.GenBlockAxis([]int{0, 3, 3}))
	dst := tpl(t, []int{6}, dad.BlockAxis(2))

	t.Run("local", func(t *testing.T) {
		s, err := schedule.Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		srcLocals := fillByGlobal(src)
		dstLocals := make([][]float64, dst.NumProcs())
		for r := range dstLocals {
			dstLocals[r] = make([]float64, dst.LocalCount(r))
		}
		if srcLocals[0] != nil && len(srcLocals[0]) != 0 {
			t.Fatalf("rank 0 should own nothing, has %d elements", len(srcLocals[0]))
		}
		ExecuteLocal(s, srcLocals, dstLocals)
		verify(t, dst, dstLocals)
	})

	t.Run("exchange", func(t *testing.T) {
		got := runBudgetExchangeT(t, src, dst, func(v float64) float64 { return v }, 0, false, []int{4, 3, 2, 1, 0})
		verify(t, dst, got)
	})

	t.Run("exchange-fenced", func(t *testing.T) {
		got := runBudgetExchangeT(t, src, dst, func(v float64) float64 { return v }, 0, true, []int{0, 1, 2, 3, 4})
		verify(t, dst, got)
	})

	t.Run("exchange-budgeted", func(t *testing.T) {
		got := runBudgetExchangeT(t, src, dst, func(v float64) float64 { return v }, 48, false, []int{2, 0, 4, 1, 3})
		verify(t, dst, got)
	})

	// The linear path always answers every request, so aligned
	// Block→Block layouts make half the replies zero-element messages.
	// Budgeted, each such reply is one zero-byte chunk and every round
	// still carries at least one chunk: rounds ≤ chunks.
	t.Run("linear-empty-replies-budgeted", func(t *testing.T) {
		lsrc := tpl(t, []int{8}, dad.BlockAxis(2))
		ldst := tpl(t, []int{8}, dad.BlockAxis(2))
		srcLin := linear.NewRowMajor(lsrc)
		dstLin := linear.NewRowMajor(ldst)
		srcLocals := fillByGlobal(lsrc)
		chunks0, rounds0 := mChunksSent.Value(), mRoundsSent.Value()
		dstLocals := make([][]float64, 2)
		done := make(chan error, 4)
		cs := comm.NewWorld(4).Comms()
		lay := Layout{SrcBase: 0, DstBase: 2}
		for r := 0; r < 4; r++ {
			go func(r int) {
				var sl, dl []float64
				if r < 2 {
					sl = srcLocals[r]
				} else {
					dl = make([]float64, ldst.LocalCount(r-2))
					dstLocals[r-2] = dl
				}
				done <- LinearExchangeWithT[float64](cs[r], srcLin, dstLin, lay, 2, 2, sl, dl, 0, TransferOpts{MaxBytesInFlight: 32})
			}(r)
		}
		for r := 0; r < 4; r++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		verify(t, ldst, dstLocals)
		dChunks, dRounds := mChunksSent.Value()-chunks0, mRoundsSent.Value()-rounds0
		// Each source: one 4-element reply (2 chunks at 2 elems) plus one
		// zero-element reply (1 chunk) = 3 chunks.
		if dChunks != 6 {
			t.Errorf("chunks sent = %d, want 6 (zero-element replies travel as one chunk)", dChunks)
		}
		if dRounds > dChunks {
			t.Errorf("rounds %d > chunks %d: an empty round was flushed", dRounds, dChunks)
		}
	})
}
