package redist

import (
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/schedule"
	"mxn/internal/transport"
)

// crossWorlds couples two worlds of m+n ranks over an in-memory pipe:
// the source cohort [0,m) is local to world A, the destination cohort
// [m,m+n) local to world B. Returns the shared-group handles each side
// uses for its local ranks.
func crossWorlds(t *testing.T, m, n int) (csA, csB []*comm.Comm) {
	t.Helper()
	total := m + n
	wa := comm.NewWorld(total)
	wb := comm.NewWorld(total)
	a, b := transport.Pipe()
	var dstRanks, srcRanks, all []int
	for r := 0; r < total; r++ {
		all = append(all, r)
		if r < m {
			srcRanks = append(srcRanks, r)
		} else {
			dstRanks = append(dstRanks, r)
		}
	}
	pa := wa.ConnectPeer(a, dstRanks)
	pb := wb.ConnectPeer(b, srcRanks)
	t.Cleanup(func() { pa.Close(); pb.Close() })
	return wa.SharedGroup(1, all), wb.SharedGroup(1, all)
}

// runCrossWorldExchange performs one transfer with every source rank in
// one world and every destination rank in another, so every data message
// (and, in the budgeted/linear variants, every request and credit)
// crosses the ConnectPeer link through the codecs in remote.go.
func runCrossWorldExchange(t *testing.T, linearMode bool, budget int) {
	src := tpl(t, []int{24}, dad.BlockAxis(2))
	dst := tpl(t, []int{24}, dad.CyclicAxis(3))
	const m, n = 2, 3
	var s *schedule.Schedule
	if !linearMode {
		var err error
		s, err = schedule.Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
	}
	csA, csB := crossWorlds(t, m, n)
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, n)
	lay := Layout{SrcBase: 0, DstBase: m}

	var wg sync.WaitGroup
	var mu sync.Mutex
	body := func(c *comm.Comm) {
		defer wg.Done()
		var sl, dl []float64
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		var err error
		opts := TransferOpts{MaxBytesInFlight: budget}
		if linearMode {
			err = LinearExchangeWithT[float64](c, linear.NewRowMajor(src), linear.NewRowMajor(dst),
				lay, m, n, sl, dl, 0, opts)
		} else {
			err = ExchangeWithT[float64](c, s, lay, sl, dl, 0, opts)
		}
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			mu.Unlock()
		}
	}
	wg.Add(m + n)
	for r := 0; r < m; r++ {
		go body(csA[r])
	}
	for r := m; r < m+n; r++ {
		go body(csB[r])
	}
	wg.Wait()
	verify(t, dst, dstLocals)
}

func TestExchangeAcrossConnectedWorlds(t *testing.T) {
	runCrossWorldExchange(t, false, 0)
}

func TestExchangeAcrossConnectedWorldsBudgeted(t *testing.T) {
	// A small budget forces chunking, so credits (ack messages) flow
	// destination-world → source-world through the codec too.
	runCrossWorldExchange(t, false, 64)
}

func TestLinearExchangeAcrossConnectedWorlds(t *testing.T) {
	// Receiver-driven: requests cross B→A, replies (with position
	// metadata) cross A→B.
	runCrossWorldExchange(t, true, 0)
}
