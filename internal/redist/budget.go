// The memory-bounded transfer path: runTransfer with a MaxBytesInFlight
// budget B dispatches here instead of materializing every pairwise
// message at once.
//
// Decomposition. Each pairwise message is split at element boundaries
// into chunks of at most B/2 bytes, and consecutive chunks are grouped
// greedily into rounds of at most B/2 total bytes (a chunk larger than
// the cap — possible only under degenerate budgets smaller than two
// elements — forms a round of its own, so rounds are never empty).
// Zero-element messages still travel, as a single zero-byte chunk, so
// every expected pairwise message stays matched one-to-one with
// arrivals.
//
// Flow control. Every data chunk is acknowledged by its receiver after
// disposal (unpack, drain or discard — credit is flow control, not
// correctness), and round N+1 is sent only once every chunk of round N
// has been acknowledged. The next round is packed while the previous
// one is in flight — the pipelining overlap — so a rank holds at most
// two rounds of packed buffers at once and its resident packed bytes
// stay bounded by B. Acks are pooled marker messages on the same data
// tag, so the tag-spacing contract of the unbudgeted paths is
// unchanged.
//
// Symmetry. Both sides derive the identical chunk decomposition from
// (budget, element size, message element count), so no negotiation
// traffic is needed — which is also why every rank of one transfer must
// pass the SAME MaxBytesInFlight and element type: a receiver that
// derives a different chunk count cannot re-synchronize with its
// sender.
//
// Liveness. Sending and receiving interleave in one event loop per rank
// (a rank blocked waiting for acks must keep consuming its own incoming
// chunks, or two mutually-sending ranks deadlock). Receives use
// AnySource and are attributed by sender: the comm layer preserves
// per-pair FIFO order and a plan never expects more than one pairwise
// message from the same peer, so an arriving chunk is always the next
// unconsumed chunk of that peer's message.
package redist

import (
	"fmt"
	"sync"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/obs"
)

var (
	mRoundsSent = obs.Default().Counter("redist.rounds_sent")
	mChunksSent = obs.Default().Counter("redist.chunks_sent")
	mAcksSent   = obs.Default().Counter("redist.acks_sent")
	mAcksRecv   = obs.Default().Counter("redist.acks_recv")
)

// chunkElemCap returns the element capacity of one chunk under a byte
// budget: half the budget, so the staged round plus the in-flight round
// together stay within it. Budgets smaller than two elements degrade to
// element-at-a-time chunks — the bound becomes best-effort.
func chunkElemCap(budget, esz int) int {
	n := budget / 2 / esz
	if n < 1 {
		n = 1
	}
	return n
}

// chunkCount returns how many chunks a pairwise message of elems
// elements splits into. Empty messages travel as one zero-byte chunk.
func chunkCount(elems, capElems int) int {
	if elems == 0 {
		return 1
	}
	return (elems + capElems - 1) / capElems
}

// nextChunkElems returns the element count of the chunk starting at
// element offset done within a message of elems elements.
func nextChunkElems(elems, done, capElems int) int {
	if n := elems - done; n < capElems {
		return n
	}
	return capElems
}

// stagedChunk is one packed, not-yet-sent chunk of the staged round.
type stagedChunk struct {
	m     *xferMsg
	op    int // send-op index, for ack accounting
	group int
	rank  int
}

// recvProgress tracks one expected pairwise message's chunked arrival.
type recvProgress struct {
	group      int
	rank       int
	elems      int
	elemsDone  int
	chunksLeft int
}

// budgetRun is the pooled per-call state of a budgeted transfer. The
// slices keep their backing arrays across recycles, so a steady-state
// budgeted transfer allocates nothing (guarded by
// TestExchangeBudgetedSteadyStateZeroAlloc).
type budgetRun struct {
	staged  []stagedChunk
	pendAck []int // per send op: chunks sent but not yet acknowledged
	recv    []recvProgress
}

const maxFreeBudgetRuns = 64

var budgetPool = struct {
	mu   sync.Mutex
	free []*budgetRun
}{free: make([]*budgetRun, 0, maxFreeBudgetRuns)}

func getBudgetRun() *budgetRun {
	budgetPool.mu.Lock()
	if n := len(budgetPool.free); n > 0 {
		st := budgetPool.free[n-1]
		budgetPool.free[n-1] = nil
		budgetPool.free = budgetPool.free[:n-1]
		budgetPool.mu.Unlock()
		return st
	}
	budgetPool.mu.Unlock()
	return new(budgetRun)
}

func putBudgetRun(st *budgetRun) {
	for i := range st.staged {
		st.staged[i] = stagedChunk{}
	}
	st.staged = st.staged[:0]
	st.pendAck = st.pendAck[:0]
	for i := range st.recv {
		st.recv[i] = recvProgress{}
	}
	st.recv = st.recv[:0]
	budgetPool.mu.Lock()
	if len(budgetPool.free) < maxFreeBudgetRuns {
		budgetPool.free = append(budgetPool.free, st)
	}
	budgetPool.mu.Unlock()
}

// sendAck returns one chunk's transfer credit to its sender.
func sendAck(c *comm.Comm, to, tag int, epoch uint64) {
	a := getMsg()
	a.epoch = epoch
	a.ack = true
	c.Send(to, tag, a)
	mAcksSent.Inc()
}

// runBudgeted is the budgeted counterpart of runTransfer's loop. One
// event loop interleaves three duties: shipping the staged round when
// all in-flight chunks are acknowledged (then immediately packing the
// next round), consuming incoming data chunks (acknowledging each), and
// consuming acks. On error the same drain discipline as the unbudgeted
// path applies — remaining expected chunks and acks are consumed (with
// a give-up timeout when fenced), and drained chunks are still
// acknowledged so live peers are never wedged waiting for credit.
func runBudgeted[T Elem, P plan[T]](c *comm.Comm, pl P, dataTag int, f *fenceRun, budget int) error {
	tr := obs.Trace()
	wantKind := kindOf[T]()
	esz := elemSize[T]()
	capElems := chunkElemCap(budget, esz)
	roundBytes := capElems * esz
	if half := budget / 2; half > roundBytes {
		roundBytes = half
	}
	var epoch uint64
	if f != nil {
		epoch = f.entryEpoch
	}

	st := getBudgetRun()
	defer putBudgetRun(st)

	nSend := pl.sends()
	for i := 0; i < nSend; i++ {
		st.pendAck = append(st.pendAck, 0)
	}
	nRecv := pl.recvs()
	recvChunks := 0
	for i := 0; i < nRecv; i++ {
		op := pl.recvOp(i)
		n := chunkCount(op.elems, capElems)
		st.recv = append(st.recv, recvProgress{group: op.group, rank: op.rank, elems: op.elems, chunksLeft: n})
		recvChunks += n
	}
	if f != nil && pl.dstRank() >= 0 {
		f.out.Validity = dad.NewValidity(pl.dstLen())
	}

	var (
		curOp, curOff int // chunking cursor over the send ops
		pendingAcks   int
		firstErr      error
		lost          bool
		discarded     bool
		waited        time.Duration
	)
	for {
		if f != nil {
			// Liveness sweep. Destinations that died owing acks are
			// forgiven (their chunks were dropped in transit); sources
			// that died owing chunks get the failure policy applied.
			for i := 0; i < nSend; i++ {
				if st.pendAck[i] == 0 {
					continue
				}
				g := pl.sendOp(i).group
				if f.opts.Membership.IsAlive(g) {
					continue
				}
				f.noteDown(g)
				pendingAcks -= st.pendAck[i]
				st.pendAck[i] = 0
				if f.abortOnDeadSend && f.opts.Policy == FailStrict && firstErr == nil {
					mRankdownAborts.Inc()
					firstErr = &core.ErrRankDown{Rank: g, Epoch: f.opts.Membership.Epoch()}
				}
			}
			for i := range st.recv {
				rp := &st.recv[i]
				if rp.chunksLeft == 0 || f.opts.Membership.IsAlive(rp.group) {
					continue
				}
				f.noteDown(rp.group)
				if f.opts.Policy == FailStrict {
					if firstErr == nil {
						mRankdownAborts.Inc()
						firstErr = &core.ErrRankDown{Rank: rp.group, Epoch: f.opts.Membership.Epoch()}
					}
				} else {
					// Invalidate the whole pairwise message, chunks already
					// delivered included: validity stays a safe lower bound.
					pl.lose(i, f)
					lost = true
				}
				recvChunks -= rp.chunksLeft
				rp.chunksLeft = 0
			}
			if firstErr != nil && !discarded {
				// Fenced abort semantics: unsent rounds are dropped, the
				// cursor is retired, and the loop degrades to draining.
				for i := range st.staged {
					recycle(st.staged[i].m)
					st.staged[i] = stagedChunk{}
				}
				st.staged = st.staged[:0]
				curOp, curOff = nSend, 0
				discarded = true
			}
		}

		// Send progress: with no chunk unacknowledged, ship the staged
		// round and immediately pack the next one while it is in flight —
		// the pipelining overlap. Two rounds of at most budget/2 bytes
		// each bound this rank's resident packed bytes by the budget.
		// An unfenced rank keeps sending even after an error: its peers
		// block for exactly the chunks the decomposition promised them.
		if (f == nil || firstErr == nil) && pendingAcks == 0 && (len(st.staged) > 0 || curOp < nSend) {
			for i := range st.staged {
				sc := &st.staged[i]
				c.Send(sc.group, dataTag, sc.m)
				st.pendAck[sc.op]++
				pendingAcks++
				mMsgsSent.Inc()
				mChunksSent.Inc()
				*sc = stagedChunk{}
			}
			if len(st.staged) > 0 {
				st.staged = st.staged[:0]
				mRoundsSent.Inc()
			}
			bytes := 0
			for curOp < nSend {
				op := pl.sendOp(curOp)
				if f != nil && !f.opts.Membership.IsAlive(op.group) {
					f.noteDown(op.group)
					mSendsSkippedDead.Inc()
					if f.abortOnDeadSend && f.opts.Policy == FailStrict && firstErr == nil {
						mRankdownAborts.Inc()
						firstErr = &core.ErrRankDown{Rank: op.group, Epoch: f.opts.Membership.Epoch()}
						break
					}
					curOp, curOff = curOp+1, 0
					continue
				}
				n := nextChunkElems(op.elems, curOff, capElems)
				if len(st.staged) > 0 && bytes+n*esz > roundBytes {
					break
				}
				m := newMsg[T](epoch, n)
				if curOff == 0 {
					// Only the opening chunk carries position metadata
					// (the plan-owned full reply set on linear messages).
					m.have = pl.sendSet(curOp)
				}
				start := time.Now()
				pl.packRange(curOp, curOff, elemsOf[T](m.data, n))
				mPackNS.ObserveSince(start)
				mElemsPacked.Add(uint64(n))
				mMsgElems.Observe(int64(n))
				tr.Span(obs.EvPack, "", pl.srcRank(), op.rank, int64(n), start)
				st.staged = append(st.staged, stagedChunk{m: m, op: curOp, group: op.group, rank: op.rank})
				bytes += n * esz
				curOff += n
				if curOff >= op.elems {
					curOp, curOff = curOp+1, 0
				}
			}
			continue
		}

		if recvChunks == 0 && pendingAcks == 0 && len(st.staged) == 0 && curOp >= nSend {
			break
		}

		var (
			payload any
			from    int
		)
		if f == nil {
			payload, from = c.Recv(comm.AnySource, dataTag)
		} else {
			p, fr, ok := c.RecvTimeout(comm.AnySource, dataTag, f.opts.PollInterval)
			if !ok {
				waited += f.opts.PollInterval
				if f.opts.SuspectAfter > 0 && waited >= f.opts.SuspectAfter {
					// Cumulative silence long enough: suspect every peer
					// still owing this rank chunks or acks. The sweep at
					// the top of the loop applies the policy.
					for i := range st.recv {
						if st.recv[i].chunksLeft > 0 {
							f.opts.Membership.MarkDown(st.recv[i].group)
						}
					}
					for i := 0; i < nSend; i++ {
						if st.pendAck[i] > 0 {
							f.opts.Membership.MarkDown(pl.sendOp(i).group)
						}
					}
				}
				if firstErr != nil && waited >= maxDur(f.opts.SuspectAfter, 10*f.opts.PollInterval) {
					// Draining after an error: give up on silent peers.
					break
				}
				continue
			}
			payload = p
			from = fr
		}

		m, isMsg := payload.(*xferMsg)
		if isMsg && m.ack {
			mAcksRecv.Inc()
			recycle(m)
			credited := false
			for i := 0; i < nSend; i++ {
				if st.pendAck[i] > 0 && pl.sendOp(i).group == from {
					st.pendAck[i]--
					pendingAcks--
					credited = true
					break
				}
			}
			if !credited {
				mDrained.Inc() // leftover credit of an earlier aborted transfer
			}
			continue
		}
		mMsgsRecv.Inc()
		if isMsg && f != nil && m.epoch != 0 && m.epoch < f.entryEpoch {
			// Leftover chunk of a pre-failure attempt. Discard, but still
			// return its credit: a stale sender may be draining on flow
			// control, and credit is never a correctness input.
			mStaleEpoch.Inc()
			recycle(m)
			sendAck(c, from, dataTag, epoch)
			continue
		}

		// Attribute to the sender's pairwise message: per-pair FIFO order
		// plus one expected message per peer make this the next chunk.
		ri := -1
		for i := range st.recv {
			if st.recv[i].group == from && st.recv[i].chunksLeft > 0 {
				ri = i
				break
			}
		}
		if ri < 0 {
			if isMsg {
				recycle(m)
				sendAck(c, from, dataTag, epoch)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("redist: destination rank %d received unexpected %T from group rank %d", pl.dstRank(), payload, from)
			} else {
				mDrained.Inc()
			}
			continue
		}
		rp := &st.recv[ri]
		rp.chunksLeft--
		recvChunks--
		if !isMsg {
			if firstErr == nil {
				firstErr = fmt.Errorf("redist: destination rank %d received %T, want transfer message", pl.dstRank(), payload)
			} else {
				mDrained.Inc()
			}
			continue
		}
		if firstErr != nil {
			mDrained.Inc()
			recycle(m)
			sendAck(c, from, dataTag, epoch)
			continue
		}
		if f != nil && m.epoch > f.entryEpoch {
			// The peer already re-planned into a newer epoch; consuming
			// its chunks against this rank's stale plan would corrupt
			// data silently. Typed error so the caller re-enters at the
			// current epoch.
			mStaleLocal.Inc()
			remote := m.epoch
			recycle(m)
			sendAck(c, from, dataTag, epoch)
			firstErr = &StaleLocalEpochError{Transfer: pl.proto(), Rank: pl.dstRank(), Peer: rp.rank, Local: f.entryEpoch, Remote: remote}
			continue
		}
		if m.kind != wantKind {
			firstErr = &ElemKindError{Transfer: pl.proto(), DstRank: pl.dstRank(), SrcRank: rp.rank, Got: m.kind, Want: wantKind}
			recycle(m)
			sendAck(c, from, dataTag, epoch)
			continue
		}
		expect := nextChunkElems(rp.elems, rp.elemsDone, capElems)
		if m.elems != expect || len(m.data) != m.elems*esz {
			firstErr = &ElemCountError{Transfer: pl.proto(), DstRank: pl.dstRank(), SrcRank: rp.rank, Got: m.elems, Want: expect}
			recycle(m)
			sendAck(c, from, dataTag, epoch)
			continue
		}
		if rp.elemsDone == 0 {
			if err := pl.checkHave(ri, m); err != nil {
				firstErr = err
				recycle(m)
				sendAck(c, from, dataTag, epoch)
				continue
			}
		}
		start := time.Now()
		pl.unpackRange(ri, rp.elemsDone, elemsOf[T](m.data, m.elems))
		mUnpackNS.ObserveSince(start)
		mElemsUnpack.Add(uint64(m.elems))
		tr.Span(obs.EvUnpack, "", pl.dstRank(), rp.rank, int64(m.elems), start)
		rp.elemsDone += m.elems
		recycle(m)
		sendAck(c, from, dataTag, epoch)
	}

	if firstErr != nil {
		mErrors.Inc()
		return firstErr
	}
	if err := pl.finish(lost); err != nil {
		mErrors.Inc()
		return err
	}
	if f != nil && pl.dstRank() >= 0 && f.opts.Desc != nil && !f.out.Validity.AllValid() {
		f.opts.Desc.SetValidity(pl.dstRank(), f.out.Validity)
	}
	if pl.srcRank() >= 0 {
		mTransfers.Inc()
	}
	if pl.dstRank() >= 0 {
		mTransfers.Inc()
	}
	return nil
}
