// Online reconfiguration: the migration executor of a planned cohort
// resize (the malleability tentpole — see DESIGN.md "Malleability").
//
// The full resize sequence is driven by the caller:
//
//	rz, _  := membership.ProposeResize(newWidth)   // prepare fence
//	newT, _ := dad.Reblock(oldT, newWidth)          // re-derive layout
//	out, err := redist.ReconfigureFencedT(...)      // migrate (this file)
//	redist.CommitReconfigure(rz, cache, oldT)       // commit + scoped invalidation
//	// or redist.AbortReconfigure(rz, cache, newT) on failure
//
// ReconfigureFenced is ExchangeFenced with three resize-specific twists:
// the plan is the old→new migration (schedule.Remap, closed-form when the
// layouts allow), the fence entry epoch is pinned to the resize's prepare
// epoch rather than sampled (so every rank enters the migration at the
// same cut even if a death bumps the live epoch first), and the widths
// are validated against the Resize handle so a mismatched template pair
// fails before any data moves.
package redist

import (
	"fmt"
	"sort"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

var (
	mReconfigures      = obs.Default().Counter("redist.reconfigures")
	mReconfigureElems  = obs.Default().Counter("redist.reconfigure_elems")
	mReconfigureNS     = obs.Default().Histogram("redist.reconfigure_ns")
	mReconfigCommits   = obs.Default().Counter("redist.reconfigure_commits")
	mReconfigAborts    = obs.Default().Counter("redist.reconfigure_aborts")
	mReconfigInvalids  = obs.Default().Counter("redist.reconfigure_cache_invalidations")
	mReconfigDisturbed = obs.Default().Counter("redist.reconfigure_disturbed")
)

// ReconfigureError reports a malformed reconfiguration call — template
// widths that do not match the resize handle, or a communicator group too
// small to host both cohorts.
type ReconfigureError struct {
	Reason string
}

func (e *ReconfigureError) Error() string {
	return "redist: reconfigure: " + e.Reason
}

// ReconfigureFencedT migrates one array from its old-cohort layout to its
// new-cohort layout inside a prepared resize window. Every member of the
// communicator group hosting an old-cohort or new-cohort rank must call
// it: old ranks pass their current local buffer as srcLocal (nil beyond
// the old width or when the template assigns them nothing), new ranks
// pass a destination buffer sized newT.LocalCount (nil beyond the new
// width) — a rank in both cohorts passes both. Layout places the two
// cohorts in the group exactly as in ExchangeT; the common case is
// Layout{} with cohort rank == group rank on both sides.
//
// The transfer is fenced at rz.PrepareEpoch(): concurrent fenced
// transfers or PRMI calls entered at earlier epochs drain against their
// own entry epoch, and traffic straddling the prepare fence surfaces as
// the existing typed stale-epoch errors — never as silently mixed-epoch
// data. A rank dying mid-migration follows opts.Policy: FailStrict
// aborts with *core.ErrRankDown (the caller should then AbortReconfigure
// and re-propose), FailRedistribute completes on the survivors with the
// losses recorded in the Outcome's validity bitmap, after which the
// caller can still commit. Either way rz.Disturbed() reports that the
// window was not clean.
//
// The migration plan comes from opts.Cache when set — several arrays
// aligned to the same template pair migrate on one plan, built once —
// and from schedule.Remap otherwise.
func ReconfigureFencedT[T Elem](c *comm.Comm, rz *core.Resize, oldT, newT *dad.Template, lay Layout,
	srcLocal, dstLocal []T, baseTag int, opts FenceOpts) (*Outcome, error) {

	if rz == nil {
		return nil, &ReconfigureError{Reason: "nil Resize handle (call Membership.ProposeResize first)"}
	}
	if got, want := oldT.NumProcs(), rz.OldWidth(); got != want {
		return nil, &ReconfigureError{Reason: fmt.Sprintf("old template spans %d ranks, resize is from width %d", got, want)}
	}
	if got, want := newT.NumProcs(), rz.NewWidth(); got != want {
		return nil, &ReconfigureError{Reason: fmt.Sprintf("new template spans %d ranks, resize is to width %d", got, want)}
	}
	if need := lay.SrcBase + oldT.NumProcs(); c.Size() < need {
		return nil, &ReconfigureError{Reason: fmt.Sprintf("group of %d ranks cannot host old cohort ending at %d", c.Size(), need)}
	}
	if need := lay.DstBase + newT.NumProcs(); c.Size() < need {
		return nil, &ReconfigureError{Reason: fmt.Sprintf("group of %d ranks cannot host new cohort ending at %d", c.Size(), need)}
	}

	var s *schedule.Schedule
	var err error
	if opts.Cache != nil {
		s, err = opts.Cache.Get(oldT, newT)
	} else {
		s, err = schedule.Remap(oldT, newT)
	}
	if err != nil {
		return nil, err
	}

	start := time.Now()
	f := newFenceRunAt(opts, true, rz.PrepareEpoch())
	err = exchangeT(c, s, lay, srcLocal, dstLocal, baseTag, f, opts.MaxBytesInFlight, false)
	sort.Ints(f.out.Down)
	mReconfigures.Inc()
	mReconfigureNS.ObserveSince(start)
	if err == nil {
		mReconfigureElems.Add(uint64(s.TotalElems()))
	}
	if rz.Disturbed() {
		mReconfigDisturbed.Inc()
	}
	return f.out, err
}

// ReconfigureFenced is ReconfigureFencedT for float64, the historical
// default.
func ReconfigureFenced(c *comm.Comm, rz *core.Resize, oldT, newT *dad.Template, lay Layout,
	srcLocal, dstLocal []float64, baseTag int, opts FenceOpts) (*Outcome, error) {
	return ReconfigureFencedT[float64](c, rz, oldT, newT, lay, srcLocal, dstLocal, baseTag, opts)
}

// CommitReconfigure commits the resize and scopes schedule-cache
// invalidation to the retired templates: every cached plan whose source
// or destination is one of oldTemplates is dropped (those plans name the
// old geometry), while plans between unrelated couplings keep their
// 0-alloc cached steady state. Returns how many cache entries were
// dropped. The cache may be nil.
func CommitReconfigure(rz *core.Resize, cache *schedule.Cache, oldTemplates ...*dad.Template) (int, error) {
	if err := rz.Commit(); err != nil {
		return 0, err
	}
	mReconfigCommits.Inc()
	return dropTemplates(cache, oldTemplates), nil
}

// AbortReconfigure rolls the resize back and drops cached plans that
// reference the abandoned new-cohort templates (they describe a geometry
// that never materialized). Returns how many cache entries were dropped.
// The cache may be nil.
func AbortReconfigure(rz *core.Resize, cache *schedule.Cache, newTemplates ...*dad.Template) (int, error) {
	if err := rz.Abort(); err != nil {
		return 0, err
	}
	mReconfigAborts.Inc()
	return dropTemplates(cache, newTemplates), nil
}

func dropTemplates(cache *schedule.Cache, ts []*dad.Template) int {
	if cache == nil {
		return 0
	}
	n := 0
	for _, t := range ts {
		n += cache.InvalidateTemplate(t)
	}
	mReconfigInvalids.Add(uint64(n))
	return n
}
