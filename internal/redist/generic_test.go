package redist

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/schedule"
)

// Generic analogues of the float64 test helpers: fill every global index
// with a converted fingerprint and verify the destination holds exactly
// the converted fingerprints — element conservation and coverage in one
// pass, for any engine element type.

func fillByGlobalT[T Elem](t *dad.Template, conv func(float64) T) [][]T {
	locals := make([][]T, t.NumProcs())
	for r := range locals {
		locals[r] = make([]T, t.LocalCount(r))
	}
	forEachIndex(t.Dims(), func(idx []int) {
		r := t.OwnerOf(idx)
		locals[r][t.LocalOffset(r, idx)] = conv(fingerprint(idx))
	})
	return locals
}

func verifyT[T Elem](t *testing.T, dst *dad.Template, dstLocals [][]T, conv func(float64) T) {
	t.Helper()
	forEachIndex(dst.Dims(), func(idx []int) {
		r := dst.OwnerOf(idx)
		got := dstLocals[r][dst.LocalOffset(r, idx)]
		if got != conv(fingerprint(idx)) {
			t.Errorf("index %v on dst rank %d: got %v, want %v", idx, r, got, conv(fingerprint(idx)))
		}
	})
}

// runExchangeT is runExchange for an arbitrary element type.
func runExchangeT[T Elem](t *testing.T, src, dst *dad.Template, conv func(float64) T) [][]T {
	t.Helper()
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	m, n := src.NumProcs(), dst.NumProcs()
	srcLocals := fillByGlobalT(src, conv)
	dstLocals := make([][]T, n)
	var mu sync.Mutex
	comm.Run(m+n, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: m}
		var sl, dl []T
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		}
		if c.Rank() >= m {
			dl = make([]T, dst.LocalCount(c.Rank()-m))
		}
		if err := ExchangeT(c, s, lay, sl, dl, 0); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			mu.Unlock()
		}
	})
	return dstLocals
}

func TestExchangeFloat32(t *testing.T) {
	src := tpl(t, []int{8, 9}, dad.CyclicAxis(2), dad.GenBlockAxis([]int{2, 7}))
	dst := tpl(t, []int{8, 9}, dad.BlockCyclicAxis(2, 3), dad.BlockAxis(2))
	conv := func(v float64) float32 { return float32(v) }
	verifyT(t, dst, runExchangeT(t, src, dst, conv), conv)
}

func TestExchangeComplex128(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.CyclicAxis(2))
	conv := func(v float64) complex128 { return complex(v, -v) }
	verifyT(t, dst, runExchangeT(t, src, dst, conv), conv)
}

func TestExchangeInt32(t *testing.T) {
	src := tpl(t, []int{16}, dad.BlockAxis(2))
	dst := tpl(t, []int{16}, dad.CyclicAxis(4))
	conv := func(v float64) int32 { return int32(v) }
	verifyT(t, dst, runExchangeT(t, src, dst, conv), conv)
}

func TestExecuteLocalGeneric(t *testing.T) {
	src := tpl(t, []int{10, 10}, dad.BlockAxis(2), dad.BlockAxis(2))
	dst := tpl(t, []int{10, 10}, dad.CyclicAxis(3), dad.CollapsedAxis())
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	conv := func(v float64) int64 { return int64(v) }
	srcLocals := fillByGlobalT(src, conv)
	dstLocals := make([][]int64, dst.NumProcs())
	for r := range dstLocals {
		dstLocals[r] = make([]int64, dst.LocalCount(r))
	}
	ExecuteLocalT(s, srcLocals, dstLocals)
	verifyT(t, dst, dstLocals, conv)
}

func TestLinearExchangeFloat32(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.CyclicAxis(2))
	srcLin := linear.NewRowMajorT[float32](src)
	dstLin := linear.NewRowMajorT[float32](dst)
	conv := func(v float64) float32 { return float32(v) }
	srcLocals := fillByGlobalT(src, conv)
	dstLocals := make([][]float32, 2)
	var mu sync.Mutex
	comm.Run(5, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 3}
		var sl, dl []float32
		if c.Rank() < 3 {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float32, dst.LocalCount(c.Rank()-3))
		}
		if err := LinearExchangeT(c, srcLin, dstLin, lay, 3, 2, sl, dl, 0); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-3] = dl
			mu.Unlock()
		}
	})
	verifyT(t, dst, dstLocals, conv)
}

// Property: the float32 engine instantiation agrees with the float32 local
// executor on random template pairs — the same conservation/coverage
// property the float64 path is held to.
func TestPropertyExchangeMatchesLocalFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	conv := func(v float64) float32 { return float32(v) }
	for trial := 0; trial < 10; trial++ {
		dims := []int{1 + rng.Intn(7), 1 + rng.Intn(7)}
		mk := func() *dad.Template {
			axes := []dad.AxisDist{
				dad.BlockAxis(1 + rng.Intn(3)),
				dad.CyclicAxis(1 + rng.Intn(3)),
			}
			if rng.Intn(2) == 0 {
				axes[0], axes[1] = axes[1], axes[0]
			}
			out, err := dad.NewTemplate(dims, axes)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		src, dst := mk(), mk()
		s, err := schedule.Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		srcLocals := fillByGlobalT(src, conv)
		want := make([][]float32, dst.NumProcs())
		for r := range want {
			want[r] = make([]float32, dst.LocalCount(r))
		}
		ExecuteLocalT(s, srcLocals, want)
		got := runExchangeT(t, src, dst, conv)
		for r := range want {
			for i := range want[r] {
				if got[r][i] != want[r][i] {
					t.Fatalf("trial %d: rank %d elem %d: parallel %v local %v", trial, r, i, got[r][i], want[r][i])
				}
			}
		}
		verifyT(t, dst, got, conv)
	}
}

// A kind mismatch between the cohorts (source sends float32, destination
// expects float64) must surface as a typed *ElemKindError on the
// destination, not as garbage data.
func TestExchangeKindMismatch(t *testing.T) {
	src := tpl(t, []int{8}, dad.BlockAxis(2))
	dst := tpl(t, []int{8}, dad.CyclicAxis(2))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	src32 := fillByGlobalT(src, func(v float64) float32 { return float32(v) })
	comm.Run(4, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 2}
		if c.Rank() < 2 {
			if err := ExchangeT(c, s, lay, src32[c.Rank()], nil, 0); err != nil {
				t.Errorf("source rank %d: %v", c.Rank(), err)
			}
			return
		}
		dl := make([]float64, dst.LocalCount(c.Rank()-2))
		err := Exchange(c, s, lay, nil, dl, 0)
		var eke *ElemKindError
		if !errors.As(err, &eke) {
			t.Errorf("dst rank %d: got %v, want *ElemKindError", c.Rank()-2, err)
			return
		}
		if eke.Got != dad.Float32 || eke.Want != dad.Float64 {
			t.Errorf("dst rank %d: blamed %v->%v, want float32->float64", c.Rank()-2, eke.Got, eke.Want)
		}
	})
}
