// Package redist executes parallel data redistribution: it moves the
// elements named by a communication schedule (or by a linearization) from
// source local buffers to destination local buffers, in parallel, with no
// global synchronization and no central data-management process.
//
// Three executors are provided:
//
//   - ExecuteLocal: a single-goroutine reference executor used by tests
//     and as the baseline for benchmark comparisons.
//   - Exchange: the schedule-driven parallel executor over a comm
//     communicator whose group contains both cohorts. Each pairwise
//     message is independent — the asynchronous point-to-point structure
//     the paper's M×N component achieves with matched dataReady() calls.
//   - LinearExchange: the receiver-driven protocol of the Indiana MPI-IO
//     M×N device (Section 2.2.1): each receiver tells the senders which
//     linear chunks it requires, and no communication schedule is ever
//     computed. The per-transfer request traffic is the price.
//
// Error hygiene: a destination that detects a malformed or mis-sized
// message still consumes every message its transfer expects before
// returning the (typed) error, so a failed transfer never leaves messages
// queued under its tag to cross-match the next transfer reusing that tag.
package redist

import (
	"fmt"
	"time"

	"mxn/internal/comm"
	"mxn/internal/linear"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

// Redistribution instruments, registered in the process-default registry.
// The pack/unpack histograms time per-pair buffer staging; the element
// histograms record message granularity. All updates are single atomic
// operations: enabling metrics adds zero allocations to the pack/send
// path (guarded by TestExchangeMetricsZeroAlloc).
var (
	mLocalExecs  = obs.Default().Counter("redist.local_execs")
	mTransfers   = obs.Default().Counter("redist.transfers")
	mMsgsSent    = obs.Default().Counter("redist.msgs_sent")
	mMsgsRecv    = obs.Default().Counter("redist.msgs_recv")
	mElemsPacked = obs.Default().Counter("redist.elems_packed")
	mElemsUnpack = obs.Default().Counter("redist.elems_unpacked")
	mErrors      = obs.Default().Counter("redist.errors")
	mDrained     = obs.Default().Counter("redist.msgs_drained_after_error")
	mPackNS      = obs.Default().Histogram("redist.pack_ns")
	mUnpackNS    = obs.Default().Histogram("redist.unpack_ns")
	mMsgElems    = obs.Default().Histogram("redist.msg_elems")
	mLinRequests = obs.Default().Counter("redist.linear_requests")
	mLinReplies  = obs.Default().Counter("redist.linear_replies")
)

// ElemCountError reports a received fragment whose element count (or
// position set) does not match what the schedule or linearization
// intersection requires. It is a typed error so callers can distinguish a
// data-integrity failure from transport-level trouble.
type ElemCountError struct {
	Transfer string // "exchange" or "linear"
	DstRank  int    // destination cohort rank that detected the mismatch
	SrcRank  int    // offending source cohort rank, or -1 for the whole transfer
	Got      int
	Want     int
}

func (e *ElemCountError) Error() string {
	if e.SrcRank < 0 {
		return fmt.Sprintf("redist: %s transfer: destination rank %d received %d elements, expected %d",
			e.Transfer, e.DstRank, e.Got, e.Want)
	}
	return fmt.Sprintf("redist: %s transfer: destination rank %d received %d elements from source rank %d, expected %d",
		e.Transfer, e.DstRank, e.Got, e.SrcRank, e.Want)
}

// ExecuteLocal runs a whole schedule within one goroutine, packing from
// srcLocals[i] and unpacking into dstLocals[j]. It is the reference
// executor: the parallel paths must produce identical results.
//
// Every pair is packed before any pair is unpacked: srcLocals and
// dstLocals may alias (a self-redistribution such as an in-place
// transpose, the Layout{SrcBase == DstBase} analogue), and an interleaved
// pack/unpack would read elements an earlier pair's unpack had already
// overwritten.
func ExecuteLocal(s *schedule.Schedule, srcLocals, dstLocals [][]float64) {
	total := 0
	for _, p := range s.Pairs {
		total += p.Elems
	}
	backing := make([]float64, total)
	off := 0
	for _, p := range s.Pairs {
		schedule.Pack(p, srcLocals[p.SrcRank], backing[off:off+p.Elems])
		off += p.Elems
	}
	off = 0
	for _, p := range s.Pairs {
		schedule.Unpack(p, dstLocals[p.DstRank], backing[off:off+p.Elems])
		off += p.Elems
	}
	mLocalExecs.Inc()
	mElemsPacked.Add(uint64(total))
	mElemsUnpack.Add(uint64(total))
}

// Layout places the two cohorts of a transfer within one communicator
// group: source rank i is group rank SrcBase+i, destination rank j is
// group rank DstBase+j. For a self-redistribution (same cohort on both
// sides, e.g. a transpose) use SrcBase == DstBase.
type Layout struct {
	SrcBase, DstBase int
}

// Exchange performs one schedule-driven transfer. Every member of the
// communicator group hosting a source or destination rank must call it.
// srcLocal may be nil on ranks that are not sources; dstLocal may be nil
// on ranks that are not destinations. baseTag reserves a tag namespace so
// concurrent transfers on one communicator cannot cross-match; callers
// performing T concurrent transfers must space their base tags by at
// least one.
//
// The transfer decomposes into independent pairwise messages: sources
// pack and post all their sends without waiting, then each destination
// consumes exactly the messages addressed to it. No barrier is involved
// on either side. A destination that detects a malformed message consumes
// the rest of its expected messages before returning the error, keeping
// the tag namespace clean for the next transfer.
func Exchange(c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []float64, baseTag int) error {
	me := c.Rank()
	srcRank := me - lay.SrcBase
	dstRank := me - lay.DstBase
	isSrc := srcRank >= 0 && srcRank < s.Src.NumProcs()
	isDst := dstRank >= 0 && dstRank < s.Dst.NumProcs()
	if isSrc && srcLocal == nil {
		return fmt.Errorf("redist: group rank %d is source rank %d but has no source buffer", me, srcRank)
	}
	if isDst && dstLocal == nil {
		return fmt.Errorf("redist: group rank %d is destination rank %d but has no destination buffer", me, dstRank)
	}
	tr := obs.Trace()
	if isSrc {
		if want := s.Src.LocalCount(srcRank); len(srcLocal) != want {
			return fmt.Errorf("redist: source rank %d buffer has %d elements, template says %d", srcRank, len(srcLocal), want)
		}
		for _, p := range s.OutgoingFor(srcRank) {
			buf := make([]float64, p.Elems)
			start := time.Now()
			schedule.Pack(p, srcLocal, buf)
			mPackNS.ObserveSince(start)
			tr.Span(obs.EvPack, "", srcRank, p.DstRank, int64(p.Elems), start)
			c.Send(lay.DstBase+p.DstRank, baseTag, buf)
			mMsgsSent.Inc()
			mElemsPacked.Add(uint64(p.Elems))
			mMsgElems.Observe(int64(p.Elems))
			tr.Span(obs.EvSend, "", srcRank, p.DstRank, int64(p.Elems), start)
		}
		mTransfers.Inc()
	}
	if isDst {
		if want := s.Dst.LocalCount(dstRank); len(dstLocal) != want {
			return fmt.Errorf("redist: destination rank %d buffer has %d elements, template says %d", dstRank, len(dstLocal), want)
		}
		// Consume every expected message even after a failure so nothing
		// stays queued under baseTag for a later transfer to cross-match.
		var firstErr error
		for _, p := range s.IncomingFor(dstRank) {
			start := time.Now()
			payload, _ := c.Recv(lay.SrcBase+p.SrcRank, baseTag)
			mMsgsRecv.Inc()
			tr.Span(obs.EvRecv, "", dstRank, p.SrcRank, int64(p.Elems), start)
			if firstErr != nil {
				mDrained.Inc()
				continue
			}
			buf, ok := payload.([]float64)
			if !ok {
				firstErr = fmt.Errorf("redist: destination rank %d received %T, want []float64", dstRank, payload)
				continue
			}
			if len(buf) != p.Elems {
				firstErr = &ElemCountError{Transfer: "exchange", DstRank: dstRank, SrcRank: p.SrcRank, Got: len(buf), Want: p.Elems}
				continue
			}
			ustart := time.Now()
			schedule.Unpack(p, dstLocal, buf)
			mUnpackNS.ObserveSince(ustart)
			mElemsUnpack.Add(uint64(p.Elems))
			tr.Span(obs.EvUnpack, "", dstRank, p.SrcRank, int64(p.Elems), ustart)
		}
		if firstErr != nil {
			mErrors.Inc()
			return firstErr
		}
	}
	return nil
}

// linRequest is a destination rank's chunk request in the receiver-driven
// protocol.
type linRequest struct {
	dstRank int
	need    linear.Set
	epoch   uint64 // membership epoch stamp; 0 = unfenced transfer
}

// linReply carries the positions a source holds of a request, plus data.
type linReply struct {
	have  linear.Set
	data  []float64
	epoch uint64 // membership epoch stamp; 0 = unfenced transfer
}

// LinearExchange performs one transfer using linearization with
// receiver-driven requests and no schedule. srcLin and dstLin must
// linearize their respective templates into the same abstract linear
// space (same TotalLen); the correspondence of positions is the implicit
// source-to-destination mapping.
//
// Protocol per transfer: every destination rank sends its needed interval
// set to every source rank; every source intersects each request with its
// owned set and replies with (positions, data); destinations unpack each
// reply. Tag usage: baseTag for requests, baseTag+1 for replies, so a
// caller running concurrent linear exchanges must space base tags by two.
//
// Replies are attributed by their actual source rank (not arrival order),
// deduplicated, and each is validated against the intersection of that
// source's owned positions with this destination's needs; a mismatch
// surfaces as an *ElemCountError after the remaining expected replies
// have been drained.
func LinearExchange(c *comm.Comm, srcLin, dstLin linear.Linearizer, lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []float64, baseTag int) error {

	if srcLin.TotalLen() != dstLin.TotalLen() {
		return fmt.Errorf("redist: linearizations disagree on length: %d vs %d", srcLin.TotalLen(), dstLin.TotalLen())
	}
	me := c.Rank()
	srcRank := me - lay.SrcBase
	dstRank := me - lay.DstBase
	isSrc := srcRank >= 0 && srcRank < nSrc
	isDst := dstRank >= 0 && dstRank < nDst
	tr := obs.Trace()

	reqTag, dataTag := baseTag, baseTag+1

	// Destinations broadcast their needs to every source. (This is the
	// "small communication overhead" the paper attributes to the Indiana
	// approach.)
	if isDst {
		need := dstLin.OwnedBy(dstRank)
		for s := 0; s < nSrc; s++ {
			c.Send(lay.SrcBase+s, reqTag, linRequest{dstRank: dstRank, need: need})
			mLinRequests.Inc()
		}
	}

	// Sources answer every request with the chunks they hold. Requests are
	// consumed first and validated second: a malformed request must not
	// abandon the loop with later requests still queued under reqTag.
	if isSrc {
		owned := srcLin.OwnedBy(srcRank)
		reqs := make([]linRequest, 0, nDst)
		var firstErr error
		for i := 0; i < nDst; i++ {
			payload, _ := c.Recv(comm.AnySource, reqTag)
			req, ok := payload.(linRequest)
			if !ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("redist: source rank %d received %T, want request", srcRank, payload)
				}
				mDrained.Inc()
				continue
			}
			reqs = append(reqs, req)
		}
		for _, req := range reqs {
			have := owned.Intersect(req.need)
			data := make([]float64, have.Len())
			start := time.Now()
			srcLin.Pack(srcRank, srcLocal, have, data)
			mPackNS.ObserveSince(start)
			mElemsPacked.Add(uint64(len(data)))
			mMsgElems.Observe(int64(len(data)))
			c.Send(lay.DstBase+req.dstRank, dataTag, linReply{have: have, data: data})
			mLinReplies.Inc()
			tr.Span(obs.EvSend, "", srcRank, req.dstRank, int64(len(data)), start)
		}
		if firstErr != nil {
			mErrors.Inc()
			return firstErr
		}
		mTransfers.Inc()
	}

	// Destinations unpack one reply per source, attributing each reply to
	// its actual sender and validating it against that sender's owned∩need
	// intersection. All expected replies are consumed even after an error.
	if isDst {
		need := dstLin.OwnedBy(dstRank)
		want := need.Len()
		got := 0
		seen := make([]bool, nSrc)
		var firstErr error
		for s := 0; s < nSrc; s++ {
			payload, from := c.Recv(comm.AnySource, dataTag)
			mMsgsRecv.Inc()
			if firstErr != nil {
				mDrained.Inc()
				continue
			}
			rep, ok := payload.(linReply)
			if !ok {
				firstErr = fmt.Errorf("redist: destination rank %d received %T, want reply", dstRank, payload)
				continue
			}
			sr := from - lay.SrcBase
			if sr < 0 || sr >= nSrc {
				firstErr = fmt.Errorf("redist: destination rank %d received reply from group rank %d, outside the source cohort", dstRank, from)
				continue
			}
			if seen[sr] {
				firstErr = fmt.Errorf("redist: destination rank %d received a duplicate reply from source rank %d", dstRank, sr)
				continue
			}
			seen[sr] = true
			expect := srcLin.OwnedBy(sr).Intersect(need)
			if !rep.have.Equal(expect) {
				firstErr = &ElemCountError{Transfer: "linear", DstRank: dstRank, SrcRank: sr, Got: rep.have.Len(), Want: expect.Len()}
				continue
			}
			if len(rep.data) != rep.have.Len() {
				firstErr = &ElemCountError{Transfer: "linear", DstRank: dstRank, SrcRank: sr, Got: len(rep.data), Want: rep.have.Len()}
				continue
			}
			start := time.Now()
			dstLin.Unpack(dstRank, dstLocal, rep.have, rep.data)
			mUnpackNS.ObserveSince(start)
			mElemsUnpack.Add(uint64(len(rep.data)))
			tr.Span(obs.EvUnpack, "", dstRank, sr, int64(len(rep.data)), start)
			got += rep.have.Len()
		}
		if firstErr != nil {
			mErrors.Inc()
			return firstErr
		}
		if got != want {
			mErrors.Inc()
			return &ElemCountError{Transfer: "linear", DstRank: dstRank, SrcRank: -1, Got: got, Want: want}
		}
		mTransfers.Inc()
	}
	return nil
}
