// Package redist executes parallel data redistribution: it moves the
// elements named by a communication schedule (or by a linearization) from
// source local buffers to destination local buffers, in parallel, with no
// global synchronization and no central data-management process.
//
// Three executors are provided:
//
//   - ExecuteLocal: a single-goroutine reference executor used by tests
//     and as the baseline for benchmark comparisons.
//   - Exchange: the schedule-driven parallel executor over a comm
//     communicator whose group contains both cohorts. Each pairwise
//     message is independent — the asynchronous point-to-point structure
//     the paper's M×N component achieves with matched dataReady() calls.
//   - LinearExchange: the receiver-driven protocol of the Indiana MPI-IO
//     M×N device (Section 2.2.1): each receiver tells the senders which
//     linear chunks it requires, and no communication schedule is ever
//     computed. The per-transfer request traffic is the price.
package redist

import (
	"fmt"

	"mxn/internal/comm"
	"mxn/internal/linear"
	"mxn/internal/schedule"
)

// ExecuteLocal runs a whole schedule within one goroutine, packing from
// srcLocals[i] and unpacking into dstLocals[j]. It is the reference
// executor: the parallel paths must produce identical results.
func ExecuteLocal(s *schedule.Schedule, srcLocals, dstLocals [][]float64) {
	buf := make([]float64, 0)
	for _, p := range s.Pairs {
		if cap(buf) < p.Elems {
			buf = make([]float64, p.Elems)
		}
		b := buf[:p.Elems]
		schedule.Pack(p, srcLocals[p.SrcRank], b)
		schedule.Unpack(p, dstLocals[p.DstRank], b)
	}
}

// Layout places the two cohorts of a transfer within one communicator
// group: source rank i is group rank SrcBase+i, destination rank j is
// group rank DstBase+j. For a self-redistribution (same cohort on both
// sides, e.g. a transpose) use SrcBase == DstBase.
type Layout struct {
	SrcBase, DstBase int
}

// Exchange performs one schedule-driven transfer. Every member of the
// communicator group hosting a source or destination rank must call it.
// srcLocal may be nil on ranks that are not sources; dstLocal may be nil
// on ranks that are not destinations. baseTag reserves a tag namespace so
// concurrent transfers on one communicator cannot cross-match; callers
// performing T concurrent transfers must space their base tags by at
// least one.
//
// The transfer decomposes into independent pairwise messages: sources
// pack and post all their sends without waiting, then each destination
// consumes exactly the messages addressed to it. No barrier is involved
// on either side.
func Exchange(c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []float64, baseTag int) error {
	me := c.Rank()
	srcRank := me - lay.SrcBase
	dstRank := me - lay.DstBase
	isSrc := srcRank >= 0 && srcRank < s.Src.NumProcs()
	isDst := dstRank >= 0 && dstRank < s.Dst.NumProcs()
	if isSrc && srcLocal == nil {
		return fmt.Errorf("redist: group rank %d is source rank %d but has no source buffer", me, srcRank)
	}
	if isDst && dstLocal == nil {
		return fmt.Errorf("redist: group rank %d is destination rank %d but has no destination buffer", me, dstRank)
	}
	if isSrc {
		if want := s.Src.LocalCount(srcRank); len(srcLocal) != want {
			return fmt.Errorf("redist: source rank %d buffer has %d elements, template says %d", srcRank, len(srcLocal), want)
		}
		for _, p := range s.OutgoingFor(srcRank) {
			buf := make([]float64, p.Elems)
			schedule.Pack(p, srcLocal, buf)
			c.Send(lay.DstBase+p.DstRank, baseTag, buf)
		}
	}
	if isDst {
		if want := s.Dst.LocalCount(dstRank); len(dstLocal) != want {
			return fmt.Errorf("redist: destination rank %d buffer has %d elements, template says %d", dstRank, len(dstLocal), want)
		}
		for _, p := range s.IncomingFor(dstRank) {
			payload, _ := c.Recv(lay.SrcBase+p.SrcRank, baseTag)
			buf, ok := payload.([]float64)
			if !ok {
				return fmt.Errorf("redist: destination rank %d received %T, want []float64", dstRank, payload)
			}
			if len(buf) != p.Elems {
				return fmt.Errorf("redist: destination rank %d received %d elements from %d, schedule says %d",
					dstRank, len(buf), p.SrcRank, p.Elems)
			}
			schedule.Unpack(p, dstLocal, buf)
		}
	}
	return nil
}

// linRequest is a destination rank's chunk request in the receiver-driven
// protocol.
type linRequest struct {
	dstRank int
	need    linear.Set
}

// linReply carries the positions a source holds of a request, plus data.
type linReply struct {
	have linear.Set
	data []float64
}

// LinearExchange performs one transfer using linearization with
// receiver-driven requests and no schedule. srcLin and dstLin must
// linearize their respective templates into the same abstract linear
// space (same TotalLen); the correspondence of positions is the implicit
// source-to-destination mapping.
//
// Protocol per transfer: every destination rank sends its needed interval
// set to every source rank; every source intersects each request with its
// owned set and replies with (positions, data); destinations unpack each
// reply. Tag usage: baseTag for requests, baseTag+1 for replies, so a
// caller running concurrent linear exchanges must space base tags by two.
func LinearExchange(c *comm.Comm, srcLin, dstLin linear.Linearizer, lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []float64, baseTag int) error {

	if srcLin.TotalLen() != dstLin.TotalLen() {
		return fmt.Errorf("redist: linearizations disagree on length: %d vs %d", srcLin.TotalLen(), dstLin.TotalLen())
	}
	me := c.Rank()
	srcRank := me - lay.SrcBase
	dstRank := me - lay.DstBase
	isSrc := srcRank >= 0 && srcRank < nSrc
	isDst := dstRank >= 0 && dstRank < nDst

	reqTag, dataTag := baseTag, baseTag+1

	// Destinations broadcast their needs to every source. (This is the
	// "small communication overhead" the paper attributes to the Indiana
	// approach.)
	if isDst {
		need := dstLin.OwnedBy(dstRank)
		for s := 0; s < nSrc; s++ {
			c.Send(lay.SrcBase+s, reqTag, linRequest{dstRank: dstRank, need: need})
		}
	}

	// Sources answer every request with the chunks they hold.
	if isSrc {
		owned := srcLin.OwnedBy(srcRank)
		for i := 0; i < nDst; i++ {
			payload, _ := c.Recv(comm.AnySource, reqTag)
			req, ok := payload.(linRequest)
			if !ok {
				return fmt.Errorf("redist: source rank %d received %T, want request", srcRank, payload)
			}
			have := owned.Intersect(req.need)
			data := make([]float64, have.Len())
			srcLin.Pack(srcRank, srcLocal, have, data)
			c.Send(lay.DstBase+req.dstRank, dataTag, linReply{have: have, data: data})
		}
	}

	// Destinations unpack one reply per source.
	if isDst {
		got := 0
		for s := 0; s < nSrc; s++ {
			payload, _ := c.Recv(comm.AnySource, dataTag)
			rep, ok := payload.(linReply)
			if !ok {
				return fmt.Errorf("redist: destination rank %d received %T, want reply", dstRank, payload)
			}
			dstLin.Unpack(dstRank, dstLocal, rep.have, rep.data)
			got += rep.have.Len()
		}
		if want := dstLin.OwnedBy(dstRank).Len(); got != want {
			return fmt.Errorf("redist: destination rank %d received %d of %d positions", dstRank, got, want)
		}
	}
	return nil
}
