// Package redist executes parallel data redistribution: it moves the
// elements named by a communication schedule (or by a linearization) from
// source local buffers to destination local buffers, in parallel, with no
// global synchronization and no central data-management process.
//
// All transfers run on one generic engine (runTransfer in engine.go): a
// plan enumerates the pairwise messages, the engine packs each into a
// pooled raw-byte buffer, sends, receives, validates and unpacks. The
// element type is a type parameter (see Elem); the exported float64
// functions are thin instantiations. Four paths share the engine:
//
//   - ExecuteLocal: a single-goroutine reference executor used by tests
//     and as the baseline for benchmark comparisons.
//   - Exchange: the schedule-driven parallel executor over a comm
//     communicator whose group contains both cohorts. Each pairwise
//     message is independent — the asynchronous point-to-point structure
//     the paper's M×N component achieves with matched dataReady() calls.
//   - LinearExchange: the receiver-driven protocol of the Indiana MPI-IO
//     M×N device (Section 2.2.1): each receiver tells the senders which
//     linear chunks it requires, and no communication schedule is ever
//     computed. The per-transfer request traffic is the price.
//   - The Fenced variants (fenced.go): the same two protocols under a
//     liveness view, with epoch stamps and failure policies.
//
// Error hygiene: a destination that detects a malformed or mis-sized
// message still consumes every message its transfer expects before
// returning the (typed) error, so a failed transfer never leaves messages
// queued under its tag to cross-match the next transfer reusing that tag.
//
// Steady-state transfers over a cached schedule allocate nothing: message
// headers and data buffers come from free lists (see bufpool), and the
// schedule plan is a by-value struct. TestExchangeSteadyStateZeroAlloc
// guards this.
package redist

import (
	"fmt"
	"time"

	"mxn/internal/bufpool"
	"mxn/internal/comm"
	"mxn/internal/linear"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

// Redistribution instruments, registered in the process-default registry.
// The pack/unpack histograms time per-pair buffer staging; the element
// histograms record message granularity. All updates are single atomic
// operations: enabling metrics adds zero allocations to the pack/send
// path (guarded by TestExchangeMetricsZeroAlloc).
var (
	mLocalExecs  = obs.Default().Counter("redist.local_execs")
	mTransfers   = obs.Default().Counter("redist.transfers")
	mMsgsSent    = obs.Default().Counter("redist.msgs_sent")
	mMsgsRecv    = obs.Default().Counter("redist.msgs_recv")
	mElemsPacked = obs.Default().Counter("redist.elems_packed")
	mElemsUnpack = obs.Default().Counter("redist.elems_unpacked")
	mErrors      = obs.Default().Counter("redist.errors")
	mDrained     = obs.Default().Counter("redist.msgs_drained_after_error")
	mPackNS      = obs.Default().Histogram("redist.pack_ns")
	mUnpackNS    = obs.Default().Histogram("redist.unpack_ns")
	mMsgElems    = obs.Default().Histogram("redist.msg_elems")
	mLinRequests = obs.Default().Counter("redist.linear_requests")
	mLinReplies  = obs.Default().Counter("redist.linear_replies")
)

// ElemCountError reports a received fragment whose element count (or
// position set) does not match what the schedule or linearization
// intersection requires. It is a typed error so callers can distinguish a
// data-integrity failure from transport-level trouble.
type ElemCountError struct {
	Transfer string // "exchange" or "linear"
	DstRank  int    // destination cohort rank that detected the mismatch
	SrcRank  int    // offending source cohort rank, or -1 for the whole transfer
	Got      int
	Want     int
}

func (e *ElemCountError) Error() string {
	if e.SrcRank < 0 {
		return fmt.Sprintf("redist: %s transfer: destination rank %d received %d elements, expected %d",
			e.Transfer, e.DstRank, e.Got, e.Want)
	}
	return fmt.Sprintf("redist: %s transfer: destination rank %d received %d elements from source rank %d, expected %d",
		e.Transfer, e.DstRank, e.Got, e.SrcRank, e.Want)
}

// ExecuteLocalT runs a whole schedule within one goroutine, packing from
// srcLocals[i] and unpacking into dstLocals[j]. It is the reference
// executor: the parallel paths must produce identical results.
//
// Every pair is packed before any pair is unpacked: srcLocals and
// dstLocals may alias (a self-redistribution such as an in-place
// transpose, the Layout{SrcBase == DstBase} analogue), and an interleaved
// pack/unpack would read elements an earlier pair's unpack had already
// overwritten. The staging buffer is drawn from the buffer pool, so
// repeated local executions allocate nothing.
func ExecuteLocalT[T Elem](s *schedule.Schedule, srcLocals, dstLocals [][]T) {
	total := 0
	for _, p := range s.Pairs {
		total += p.Elems
	}
	raw := bufpool.Get(total * elemSize[T]())
	backing := elemsOf[T](raw, total)
	off := 0
	for _, p := range s.Pairs {
		schedule.PackSlice(p, srcLocals[p.SrcRank], backing[off:off+p.Elems])
		off += p.Elems
	}
	off = 0
	for _, p := range s.Pairs {
		schedule.UnpackSlice(p, dstLocals[p.DstRank], backing[off:off+p.Elems])
		off += p.Elems
	}
	bufpool.Put(raw)
	mLocalExecs.Inc()
	mElemsPacked.Add(uint64(total))
	mElemsUnpack.Add(uint64(total))
}

// ExecuteLocal is ExecuteLocalT for float64, the historical default.
func ExecuteLocal(s *schedule.Schedule, srcLocals, dstLocals [][]float64) {
	ExecuteLocalT[float64](s, srcLocals, dstLocals)
}

// Layout places the two cohorts of a transfer within one communicator
// group: source rank i is group rank SrcBase+i, destination rank j is
// group rank DstBase+j. For a self-redistribution (same cohort on both
// sides, e.g. a transpose) use SrcBase == DstBase.
type Layout struct {
	SrcBase, DstBase int
}

// ExchangeT performs one schedule-driven transfer of T elements. Every
// member of the communicator group hosting a source or destination rank
// must call it (with the same T: a kind mismatch surfaces as a typed
// *ElemKindError on the destination). srcLocal may be nil on ranks that
// are not sources; dstLocal may be nil on ranks that are not destinations.
// baseTag reserves a tag namespace so concurrent transfers on one
// communicator cannot cross-match; callers performing T concurrent
// transfers must space their base tags by at least one.
//
// The transfer decomposes into independent pairwise messages: sources
// pack and post all their sends without waiting, then each destination
// consumes exactly the messages addressed to it. No barrier is involved
// on either side. A destination that detects a malformed message consumes
// the rest of its expected messages before returning the error, keeping
// the tag namespace clean for the next transfer.
func ExchangeT[T Elem](c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []T, baseTag int) error {
	return exchangeT(c, s, lay, srcLocal, dstLocal, baseTag, nil, 0, false)
}

// Exchange is ExchangeT for float64, the historical default.
func Exchange(c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []float64, baseTag int) error {
	return exchangeT(c, s, lay, srcLocal, dstLocal, baseTag, nil, 0, false)
}

// TransferOpts tunes a transfer's resource envelope.
type TransferOpts struct {
	// MaxBytesInFlight, when positive, bounds the packed transfer
	// payload bytes this rank holds resident at once: pairwise messages
	// are split into chunks and moved in acknowledged rounds of at most
	// half the budget each, the next round packing while the previous
	// one is in flight (see budget.go). Every rank of one transfer must
	// pass the same value — both sides derive the identical chunk
	// decomposition from it instead of negotiating. Zero or negative
	// selects the unbounded path: every message materialized at once.
	//
	// Budgets smaller than two elements degrade to element-at-a-time
	// chunks, making the bound best-effort rather than hard.
	//
	// The chunk/ack protocol multiplexes every peer's traffic under the
	// transfer's data tag (an any-source receive loop), so back-to-back
	// transfers between the same ranks must use distinct base tags when
	// either is budgeted: with no barrier between them, a rank that
	// finishes early can land its next transfer's messages inside a
	// slower peer's still-running loop. The unbudgeted path receives
	// from specific peers in plan order and tolerates tag reuse.
	MaxBytesInFlight int

	// ZeroCopyLocal opts this rank's sends into the contiguous-run fast
	// path: an outgoing pairwise message that is a single run contiguous
	// in srcLocal is lent to in-process receivers as a view of the
	// caller's slice — zero pack, zero copy. The engine rendezvouses
	// with those receivers before Exchange returns, so the caller may
	// mutate srcLocal immediately afterwards, exactly as on the copying
	// path; the cost is that a source rank no longer returns before its
	// in-process destinations have unpacked. Remote destinations,
	// fenced transfers and budgeted (MaxBytesInFlight > 0) transfers
	// always use the copying path regardless of this flag.
	ZeroCopyLocal bool
}

// ExchangeWithT is ExchangeT with explicit transfer options; identical
// destination contents, different peak-memory profile.
func ExchangeWithT[T Elem](c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []T,
	baseTag int, opts TransferOpts) error {
	return exchangeT(c, s, lay, srcLocal, dstLocal, baseTag, nil, opts.MaxBytesInFlight, opts.ZeroCopyLocal)
}

// ExchangeWith is ExchangeWithT for float64, the historical default.
func ExchangeWith(c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []float64,
	baseTag int, opts TransferOpts) error {
	return exchangeT(c, s, lay, srcLocal, dstLocal, baseTag, nil, opts.MaxBytesInFlight, opts.ZeroCopyLocal)
}

// exchangeT validates cohort membership and buffer sizes, builds the
// schedule plan and runs the engine. f selects fenced (non-nil) vs plain
// operation; both Exchange and ExchangeFenced land here.
func exchangeT[T Elem](c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []T, baseTag int, f *fenceRun, budget int, zc bool) error {
	me := c.Rank()
	srcRank := me - lay.SrcBase
	dstRank := me - lay.DstBase
	isSrc := srcRank >= 0 && srcRank < s.Src.NumProcs()
	isDst := dstRank >= 0 && dstRank < s.Dst.NumProcs()
	// A nil buffer is an error only on ranks the template actually
	// assigns elements: ranks whose local count is zero (irregular
	// distributions with empty blocks) legitimately pass nil.
	if isSrc && srcLocal == nil && s.Src.LocalCount(srcRank) > 0 {
		return fmt.Errorf("redist: group rank %d is source rank %d but has no source buffer", me, srcRank)
	}
	if isDst && dstLocal == nil && s.Dst.LocalCount(dstRank) > 0 {
		return fmt.Errorf("redist: group rank %d is destination rank %d but has no destination buffer", me, dstRank)
	}
	if isSrc {
		if want := s.Src.LocalCount(srcRank); len(srcLocal) != want {
			return fmt.Errorf("redist: source rank %d buffer has %d elements, template says %d", srcRank, len(srcLocal), want)
		}
	}
	if isDst {
		if want := s.Dst.LocalCount(dstRank); len(dstLocal) != want {
			return fmt.Errorf("redist: destination rank %d buffer has %d elements, template says %d", dstRank, len(dstLocal), want)
		}
	}
	pl := schedPlan[T]{s: s, lay: lay, src: -1, dst: -1, srcLocal: srcLocal, dstLocal: dstLocal, zc: zc && budget <= 0}
	if isSrc {
		pl.src = srcRank
	}
	if isDst {
		pl.dst = dstRank
	}
	return runTransfer[T](c, pl, baseTag, f, budget)
}

// linRequest is a destination rank's chunk request in the receiver-driven
// protocol.
type linRequest struct {
	dstRank int
	need    linear.Set
	epoch   uint64 // membership epoch stamp; 0 = unfenced transfer
}

// LinearExchangeT performs one transfer of T elements using linearization
// with receiver-driven requests and no schedule. srcLin and dstLin must
// linearize their respective templates into the same abstract linear
// space (same TotalLen); the correspondence of positions is the implicit
// source-to-destination mapping.
//
// Protocol per transfer: every destination rank sends its needed interval
// set to every source rank; every source intersects each request with its
// owned set and replies with (positions, data); destinations unpack each
// reply. Tag usage: baseTag for requests, baseTag+1 for replies, so a
// caller running concurrent linear exchanges must space base tags by two.
//
// Each reply is received from its specific source rank and validated
// against the intersection of that source's owned positions with this
// destination's needs; a mismatch surfaces as an *ElemCountError after
// the remaining expected replies have been drained.
func LinearExchangeT[T Elem](c *comm.Comm, srcLin, dstLin linear.LinearizerT[T], lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []T, baseTag int) error {
	return linearExchangeT(c, srcLin, dstLin, lay, nSrc, nDst, srcLocal, dstLocal, baseTag, nil, 0)
}

// LinearExchange is LinearExchangeT for float64, the historical default.
func LinearExchange(c *comm.Comm, srcLin, dstLin linear.Linearizer, lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []float64, baseTag int) error {
	return linearExchangeT(c, srcLin, dstLin, lay, nSrc, nDst, srcLocal, dstLocal, baseTag, nil, 0)
}

// LinearExchangeWithT is LinearExchangeT with explicit transfer options:
// the request phase is unchanged (request traffic is tiny), but replies
// move through the memory-bounded chunked protocol when a budget is set.
func LinearExchangeWithT[T Elem](c *comm.Comm, srcLin, dstLin linear.LinearizerT[T], lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []T, baseTag int, opts TransferOpts) error {
	return linearExchangeT(c, srcLin, dstLin, lay, nSrc, nDst, srcLocal, dstLocal, baseTag, nil, opts.MaxBytesInFlight)
}

// linearExchangeT runs the receiver-driven negotiation (requests on
// baseTag), then hands the resulting plan to the engine for the data
// transfer (replies on baseTag+1). f selects fenced vs plain operation;
// both LinearExchange and LinearExchangeFenced land here.
func linearExchangeT[T Elem](c *comm.Comm, srcLin, dstLin linear.LinearizerT[T], lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []T, baseTag int, f *fenceRun, budget int) error {

	if srcLin.TotalLen() != dstLin.TotalLen() {
		return fmt.Errorf("redist: linearizations disagree on length: %d vs %d", srcLin.TotalLen(), dstLin.TotalLen())
	}
	me := c.Rank()
	srcRank := me - lay.SrcBase
	dstRank := me - lay.DstBase
	isSrc := srcRank >= 0 && srcRank < nSrc
	isDst := dstRank >= 0 && dstRank < nDst
	reqTag, dataTag := baseTag, baseTag+1

	pl := &linPlan[T]{lay: lay, src: -1, dst: -1, srcLin: srcLin, dstLin: dstLin, srcLocal: srcLocal, dstLocal: dstLocal}
	var epoch uint64
	if f != nil {
		epoch = f.entryEpoch
	}

	// Destinations broadcast their needs to every (live) source. This is
	// the "small communication overhead" the paper attributes to the
	// Indiana approach.
	if isDst {
		pl.dst = dstRank
		pl.need = dstLin.OwnedBy(dstRank)
		for sr := 0; sr < nSrc; sr++ {
			sg := lay.SrcBase + sr
			if f != nil && !f.opts.Membership.IsAlive(sg) {
				f.noteDown(sg)
				mSendsSkippedDead.Inc()
				continue
			}
			c.Send(sg, reqTag, linRequest{dstRank: dstRank, need: pl.need, epoch: epoch})
			mLinRequests.Inc()
		}
		// Expect one reply per source. Sources that were dead at entry (or
		// die later) stay in the plan: the engine's liveness check settles
		// them — under FailStrict as a typed abort, under FailRedistribute
		// as invalidated positions — without ever blocking on them.
		pl.inSrc = make([]int, nSrc)
		pl.inSets = make([]linear.Set, nSrc)
		for sr := 0; sr < nSrc; sr++ {
			pl.inSrc[sr] = sr
			pl.inSets[sr] = srcLin.OwnedBy(sr).Intersect(pl.need)
		}
	}

	// Sources collect one request per (live) destination. Requests are
	// consumed first and validated second: a malformed request must not
	// abandon the loop with later requests still queued under reqTag.
	if isSrc {
		pl.src = srcRank
		owned := srcLin.OwnedBy(srcRank)
		if f == nil {
			var firstErr error
			for i := 0; i < nDst; i++ {
				payload, _ := c.Recv(comm.AnySource, reqTag)
				req, ok := payload.(linRequest)
				if !ok {
					if firstErr == nil {
						firstErr = fmt.Errorf("redist: source rank %d received %T, want request", srcRank, payload)
					}
					mDrained.Inc()
					continue
				}
				pl.outDst = append(pl.outDst, req.dstRank)
				pl.outSets = append(pl.outSets, owned.Intersect(req.need))
			}
			if firstErr != nil {
				mErrors.Inc()
				return firstErr
			}
		} else {
			// Poll so a destination that dies before requesting does not
			// hang the source; discard stale-epoch leftovers.
			m := f.opts.Membership
			pending := map[int]bool{}
			for d := 0; d < nDst; d++ {
				pending[lay.DstBase+d] = true
			}
			waited := time.Duration(0)
			var staleLocal error
			for len(pending) > 0 {
				for dg := range pending {
					if !m.IsAlive(dg) {
						f.noteDown(dg)
						delete(pending, dg)
					}
				}
				if len(pending) == 0 {
					break
				}
				payload, from, ok := c.RecvTimeout(comm.AnySource, reqTag, f.opts.PollInterval)
				if !ok {
					waited += f.opts.PollInterval
					if f.opts.SuspectAfter > 0 && waited >= f.opts.SuspectAfter {
						for dg := range pending {
							m.MarkDown(dg)
						}
					}
					continue
				}
				req, isReq := payload.(linRequest)
				if isReq && req.epoch != 0 && req.epoch < f.entryEpoch {
					mStaleEpoch.Inc()
					continue
				}
				if !isReq {
					mDrained.Inc()
					continue
				}
				delete(pending, from)
				if req.epoch > f.entryEpoch {
					// The requester already re-planned into a newer epoch:
					// any reply this source packs against its stale view
					// would be rejected over there as stale anyway. Keep
					// consuming the remaining requests (tag hygiene), then
					// surface a typed error so the caller re-enters the
					// transfer at the current epoch.
					if staleLocal == nil {
						mStaleLocal.Inc()
						staleLocal = &StaleLocalEpochError{Transfer: "linear", Rank: srcRank, Peer: req.dstRank, Local: f.entryEpoch, Remote: req.epoch}
					}
					continue
				}
				if staleLocal != nil {
					mDrained.Inc()
					continue
				}
				pl.outDst = append(pl.outDst, req.dstRank)
				pl.outSets = append(pl.outSets, owned.Intersect(req.need))
			}
			if staleLocal != nil {
				mErrors.Inc()
				return staleLocal
			}
		}
	}

	return runTransfer[T](c, pl, dataTag, f, budget)
}
