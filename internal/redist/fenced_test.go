package redist

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/schedule"
)

// runFenced executes one fenced schedule-driven transfer over m+n group
// ranks, with the ranks listed in deadAtEntry pre-marked down (their
// goroutines do not participate, as a crashed process would not). It
// returns the destination buffers and the per-destination outcomes.
func runFenced(t *testing.T, src, dst *dad.Template, policy FailPolicy,
	deadAtEntry []int, opts func(*FenceOpts)) ([][]float64, []*Outcome, []error) {
	t.Helper()
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	m, n := src.NumProcs(), dst.NumProcs()
	mem := core.NewMembership(m + n)
	dead := map[int]bool{}
	for _, g := range deadAtEntry {
		mem.MarkDown(g)
		dead[g] = true
	}
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, n)
	outs := make([]*Outcome, n)
	errs := make([]error, n)
	var mu sync.Mutex
	comm.Run(m+n, func(c *comm.Comm) {
		if dead[c.Rank()] {
			return
		}
		fo := FenceOpts{Membership: mem, Policy: policy, PollInterval: time.Millisecond}
		if opts != nil {
			opts(&fo)
		}
		lay := Layout{SrcBase: 0, DstBase: m}
		var sl, dl []float64
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		out, err := ExchangeFenced(c, s, lay, sl, dl, 0, fo)
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			outs[c.Rank()-m] = out
			errs[c.Rank()-m] = err
			mu.Unlock()
		} else if err != nil {
			t.Errorf("src rank %d: %v", c.Rank(), err)
		}
	})
	return dstLocals, outs, errs
}

func TestExchangeFencedCleanMatchesExchange(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.BlockAxis(4))
	got, outs, errs := runFenced(t, src, dst, FailStrict, nil, nil)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("dst rank %d: %v", r, err)
		}
		if len(outs[r].Down) != 0 || outs[r].Replanned != nil {
			t.Errorf("dst rank %d: clean transfer reported %+v", r, outs[r])
		}
		if !outs[r].Validity.AllValid() {
			t.Errorf("dst rank %d: clean transfer invalidated elements", r)
		}
	}
	verify(t, dst, got)
}

// lostGlobals marks which destination elements depend on the dead source.
func checkLossPattern(t *testing.T, src, dst *dad.Template, victim int,
	got [][]float64, outs []*Outcome) {
	t.Helper()
	forEachIndex(dst.Dims(), func(idx []int) {
		r := dst.OwnerOf(idx)
		off := dst.LocalOffset(r, idx)
		if src.OwnerOf(idx) == victim {
			if outs[r].Validity.Valid(off) {
				t.Errorf("index %v on dst rank %d: lost element marked valid", idx, r)
			}
		} else {
			if !outs[r].Validity.Valid(off) {
				t.Errorf("index %v on dst rank %d: delivered element marked invalid", idx, r)
			}
			if got[r][off] != fingerprint(idx) {
				t.Errorf("index %v on dst rank %d: got %v, want %v", idx, r, got[r][off], fingerprint(idx))
			}
		}
	})
}

func TestExchangeFencedRedistributeDeadAtEntry(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.BlockAxis(4))
	const victim = 1 // source rank 1 == group rank 1 (SrcBase 0)

	cache := schedule.NewCache()
	if _, err := cache.Get(src, dst); err != nil {
		t.Fatal(err)
	}
	desc, err := dad.NewDescriptor("f", dad.Float64, dad.ReadWrite, dst)
	if err != nil {
		t.Fatal(err)
	}

	got, outs, errs := runFenced(t, src, dst, FailRedistribute, []int{victim},
		func(fo *FenceOpts) { fo.Cache = cache; fo.Desc = desc })
	for r, err := range errs {
		if err != nil {
			t.Fatalf("dst rank %d: %v", r, err)
		}
		if outs[r].Epoch != 2 {
			t.Errorf("dst rank %d: entry epoch = %d, want 2", r, outs[r].Epoch)
		}
	}
	checkLossPattern(t, src, dst, victim, got, outs)

	// Destinations that lost a pair re-planned and reported the death.
	sched, _ := schedule.Build(src, dst)
	for r := range outs {
		lost := false
		for _, p := range sched.IncomingFor(r) {
			if p.SrcRank == victim {
				lost = true
			}
		}
		if !lost {
			continue
		}
		if len(outs[r].Down) != 1 || outs[r].Down[0] != victim {
			t.Errorf("dst rank %d: Down = %v, want [%d]", r, outs[r].Down, victim)
		}
		if outs[r].Replanned == nil {
			t.Errorf("dst rank %d: no re-plan recorded", r)
			continue
		}
		for _, p := range outs[r].Replanned.Pairs {
			if p.SrcRank == victim {
				t.Errorf("dst rank %d: re-planned schedule still uses the victim", r)
			}
		}
		// The bitmap is attached to the destination DAD.
		if desc.Validity(r) != outs[r].Validity {
			t.Errorf("dst rank %d: validity not attached to descriptor", r)
		}
	}

	// The cached (src, dst) entry was invalidated by the re-plan.
	if cache.Invalidate(src, dst) {
		t.Error("schedule cache still holds the pre-failure plan")
	}
}

func TestExchangeFencedSuspectsSilentSource(t *testing.T) {
	// Nobody marks the victim down: the victim simply never sends, and
	// receiver-side suspicion (SuspectAfter) must detect it mid-transfer
	// and re-plan.
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.BlockAxis(2))
	const victim = 2
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	m, n := 3, 2
	mem := core.NewMembership(m + n)
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, n)
	outs := make([]*Outcome, n)
	var mu sync.Mutex
	comm.Run(m+n, func(c *comm.Comm) {
		if c.Rank() == victim {
			return // crashed before sending anything
		}
		fo := FenceOpts{
			Membership:   mem,
			Policy:       FailRedistribute,
			PollInterval: 2 * time.Millisecond,
			SuspectAfter: 30 * time.Millisecond,
		}
		lay := Layout{SrcBase: 0, DstBase: m}
		var sl, dl []float64
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		out, err := ExchangeFenced(c, s, lay, sl, dl, 0, fo)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			outs[c.Rank()-m] = out
			mu.Unlock()
		}
	})
	if mem.IsAlive(victim) {
		t.Fatal("silent source never suspected")
	}
	checkLossPattern(t, src, dst, victim, dstLocals, outs)
}

func TestExchangeFencedStrictReturnsTypedError(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.BlockAxis(4))
	const victim = 1
	_, _, errs := runFenced(t, src, dst, FailStrict, []int{victim}, nil)

	sched, _ := schedule.Build(src, dst)
	sawTyped := false
	for r, err := range errs {
		lost := false
		for _, p := range sched.IncomingFor(r) {
			if p.SrcRank == victim {
				lost = true
			}
		}
		if !lost {
			if err != nil {
				t.Errorf("dst rank %d depends only on live sources but failed: %v", r, err)
			}
			continue
		}
		var down *core.ErrRankDown
		if !errors.As(err, &down) {
			t.Errorf("dst rank %d: err = %v, want *core.ErrRankDown", r, err)
			continue
		}
		if down.Rank != victim {
			t.Errorf("dst rank %d: ErrRankDown.Rank = %d, want %d", r, down.Rank, victim)
		}
		sawTyped = true
	}
	if !sawTyped {
		t.Fatal("no destination surfaced *core.ErrRankDown")
	}
}

func TestExchangeFencedRejectsStaleEpoch(t *testing.T) {
	// A leftover message stamped at an older epoch must be discarded,
	// and the current epoch's message accepted in its place.
	src := tpl(t, []int{4}, dad.BlockAxis(1))
	dst := tpl(t, []int{4}, dad.BlockAxis(1))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(3) // rank 0 source, rank 1 destination, rank 2 phantom
	cs := w.Comms()
	mem := core.NewMembership(3)
	mem.MarkDown(2) // bump epoch to 2 without touching the cohorts

	// Inject a pre-failure leftover under the transfer's tag.
	stale := newMsg[float64](1, 4)
	copy(elemsOf[float64](stale.data, 4), []float64{-1, -1, -1, -1})
	cs[0].Send(1, 0, stale)

	srcLocal := []float64{10, 11, 12, 13}
	dstLocal := make([]float64, 4)
	fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond}
	lay := Layout{SrcBase: 0, DstBase: 1}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := ExchangeFenced(cs[0], s, lay, srcLocal, nil, 0, fo); err != nil {
			t.Errorf("source: %v", err)
		}
	}()
	out, err := ExchangeFenced(cs[1], s, lay, nil, dstLocal, 0, fo)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Validity.AllValid() {
		t.Error("clean fenced transfer invalidated elements")
	}
	for i, v := range dstLocal {
		if v != srcLocal[i] {
			t.Fatalf("dstLocal = %v: stale payload not rejected", dstLocal)
		}
	}
}

func runLinearFenced(t *testing.T, src, dst *dad.Template, policy FailPolicy,
	deadAtEntry []int) ([][]float64, []*Outcome, []error) {
	t.Helper()
	srcLin := linear.NewRowMajor(src)
	dstLin := linear.NewRowMajor(dst)
	m, n := src.NumProcs(), dst.NumProcs()
	mem := core.NewMembership(m + n)
	dead := map[int]bool{}
	for _, g := range deadAtEntry {
		mem.MarkDown(g)
		dead[g] = true
	}
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, n)
	outs := make([]*Outcome, n)
	errs := make([]error, n)
	var mu sync.Mutex
	comm.Run(m+n, func(c *comm.Comm) {
		if dead[c.Rank()] {
			return
		}
		fo := FenceOpts{Membership: mem, Policy: policy, PollInterval: time.Millisecond}
		lay := Layout{SrcBase: 0, DstBase: m}
		var sl, dl []float64
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		out, err := LinearExchangeFenced(c, srcLin, dstLin, lay, m, n, sl, dl, 0, fo)
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			outs[c.Rank()-m] = out
			errs[c.Rank()-m] = err
			mu.Unlock()
		} else if err != nil {
			t.Errorf("src rank %d: %v", c.Rank(), err)
		}
	})
	return dstLocals, outs, errs
}

func TestLinearExchangeFencedClean(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.CyclicAxis(2))
	got, outs, errs := runLinearFenced(t, src, dst, FailStrict, nil)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("dst rank %d: %v", r, err)
		}
		if !outs[r].Validity.AllValid() {
			t.Errorf("dst rank %d: clean transfer invalidated elements", r)
		}
	}
	verify(t, dst, got)
}

func TestLinearExchangeFencedRedistribute(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.CyclicAxis(2))
	const victim = 1
	got, outs, errs := runLinearFenced(t, src, dst, FailRedistribute, []int{victim})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("dst rank %d: %v", r, err)
		}
	}
	checkLossPattern(t, src, dst, victim, got, outs)
}

func TestLinearExchangeFencedStrict(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.CyclicAxis(2))
	const victim = 1
	_, _, errs := runLinearFenced(t, src, dst, FailStrict, []int{victim})
	sawTyped := false
	for r, err := range errs {
		var down *core.ErrRankDown
		if errors.As(err, &down) {
			if down.Rank != victim {
				t.Errorf("dst rank %d: ErrRankDown.Rank = %d, want %d", r, down.Rank, victim)
			}
			sawTyped = true
		}
	}
	if !sawTyped {
		t.Fatal("no destination surfaced *core.ErrRankDown")
	}
}
