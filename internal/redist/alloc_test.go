package redist

import (
	"testing"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

// steadyWorld builds a 2-source / 2-destination world whose transfers can
// run sequentially in one goroutine: sources post all their messages
// without blocking (comm sends never block), then destinations find every
// expected message already queued. That determinism is what lets
// AllocsPerRun measure the engine rather than scheduler noise.
type steadyWorld struct {
	cs        []*comm.Comm
	s         *schedule.Schedule
	lay       Layout
	srcLocals [][]float64
	dstLocals [][]float64
}

func newSteadyWorld(t testing.TB) *steadyWorld {
	src, err := dad.NewTemplate([]int{1 << 10}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{1 << 10}, []dad.AxisDist{dad.CyclicAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	w := &steadyWorld{
		cs:  comm.NewWorld(4).Comms(),
		s:   s,
		lay: Layout{SrcBase: 0, DstBase: 2},
	}
	for r := 0; r < 2; r++ {
		w.srcLocals = append(w.srcLocals, make([]float64, src.LocalCount(r)))
		w.dstLocals = append(w.dstLocals, make([]float64, dst.LocalCount(r)))
	}
	return w
}

// step runs one full transfer: both sources send, both destinations
// receive, all in the calling goroutine.
func (w *steadyWorld) step(t testing.TB) {
	for r := 0; r < 2; r++ {
		if err := Exchange(w.cs[r], w.s, w.lay, w.srcLocals[r], nil, 0); err != nil {
			t.Fatalf("source rank %d: %v", r, err)
		}
	}
	for r := 0; r < 2; r++ {
		if err := Exchange(w.cs[2+r], w.s, w.lay, nil, w.dstLocals[r], 0); err != nil {
			t.Fatalf("destination rank %d: %v", r, err)
		}
	}
}

// The tentpole guarantee: steady-state Exchange over a cached schedule
// allocates nothing. Message headers and data buffers cycle through free
// lists, the schedule plan is a by-value struct, and the indexed schedule
// accessors avoid the per-rank slice views. The first AllocsPerRun
// invocation is a warm-up (pools fill, mailbox queues reach capacity);
// the measured runs must then be allocation-free.
func TestExchangeSteadyStateZeroAlloc(t *testing.T) {
	obs.DisableTracing()
	w := newSteadyWorld(t)
	w.step(t) // warm the pools and mailbox queues
	allocs := testing.AllocsPerRun(50, func() { w.step(t) })
	if allocs != 0 {
		t.Fatalf("steady-state Exchange allocates: %v allocs per transfer step", allocs)
	}
}

// Satellite guarantee: ExecuteLocal stages through the buffer pool instead
// of allocating a fresh backing slice per call.
func TestExecuteLocalZeroAlloc(t *testing.T) {
	obs.DisableTracing()
	src, err := dad.NewTemplate([]int{1 << 10}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{1 << 10}, []dad.AxisDist{dad.CyclicAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	srcLocals := make([][]float64, 2)
	dstLocals := make([][]float64, 2)
	for r := 0; r < 2; r++ {
		srcLocals[r] = make([]float64, src.LocalCount(r))
		dstLocals[r] = make([]float64, dst.LocalCount(r))
	}
	ExecuteLocal(s, srcLocals, dstLocals) // warm the pool
	allocs := testing.AllocsPerRun(50, func() { ExecuteLocal(s, srcLocals, dstLocals) })
	if allocs != 0 {
		t.Fatalf("ExecuteLocal allocates: %v allocs/op", allocs)
	}

	// The float32 instantiation shares the same byte pool.
	src32 := make([][]float32, 2)
	dst32 := make([][]float32, 2)
	for r := 0; r < 2; r++ {
		src32[r] = make([]float32, src.LocalCount(r))
		dst32[r] = make([]float32, dst.LocalCount(r))
	}
	ExecuteLocalT(s, src32, dst32)
	allocs = testing.AllocsPerRun(50, func() { ExecuteLocalT(s, src32, dst32) })
	if allocs != 0 {
		t.Fatalf("ExecuteLocalT[float32] allocates: %v allocs/op", allocs)
	}
}

// benchSteady drives full transfer steps for -benchmem reporting;
// allocs/op must report 0 in steady state.
func benchSteady(b *testing.B, cached bool) {
	obs.DisableTracing()
	w := newSteadyWorld(b)
	w.step(b)
	elems := int64(1 << 10)
	b.ReportAllocs()
	b.SetBytes(elems * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cached {
			// Rebuild the schedule each iteration: the uncached baseline.
			s, err := schedule.Build(w.s.Src, w.s.Dst)
			if err != nil {
				b.Fatal(err)
			}
			w.s = s
		}
		w.step(b)
	}
}

func BenchmarkExchangeSteadyCached(b *testing.B)   { benchSteady(b, true) }
func BenchmarkExchangeSteadyUncached(b *testing.B) { benchSteady(b, false) }

// zcSteadyWorld is steadyWorld for the zero-copy fast path. The
// rendezvous (senders wait for receivers to unpack the lent views)
// means ranks cannot run sequentially in one goroutine, so the ranks
// are persistent workers signalled over pre-allocated channels —
// testing.AllocsPerRun counts mallocs process-wide, so the workers'
// allocations are still observed.
type zcSteadyWorld struct {
	start []chan struct{}
	done  chan error
}

func newZCSteadyWorld(t testing.TB) *zcSteadyWorld {
	// Block → block with different widths: every cross-rank message is a
	// single contiguous run, so the whole steady state rides the lent-view
	// path (no pack, no pooled data buffer).
	src, err := dad.NewTemplate([]int{1 << 10}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{1 << 10}, []dad.AxisDist{dad.BlockAxis(3)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	cs := comm.NewWorld(5).Comms()
	lay := Layout{SrcBase: 0, DstBase: 2}
	w := &zcSteadyWorld{done: make(chan error, 5)}
	for r := 0; r < 5; r++ {
		ch := make(chan struct{}, 1)
		w.start = append(w.start, ch)
		go func(r int, ch chan struct{}) {
			var sl, dl []float64
			if r < 2 {
				sl = make([]float64, src.LocalCount(r))
			} else {
				dl = make([]float64, dst.LocalCount(r-2))
			}
			opts := TransferOpts{ZeroCopyLocal: true}
			for range ch {
				w.done <- ExchangeWithT(cs[r], s, lay, sl, dl, 0, opts)
			}
		}(r, ch)
	}
	return w
}

func (w *zcSteadyWorld) step(t testing.TB) {
	for _, ch := range w.start {
		ch <- struct{}{}
	}
	for range w.start {
		if err := <-w.done; err != nil {
			t.Fatalf("zero-copy step: %v", err)
		}
	}
}

func (w *zcSteadyWorld) close() {
	for _, ch := range w.start {
		close(ch)
	}
}

// The fast path's own guarantee: lending views instead of packing must
// not re-introduce allocations — message structs and rendezvous wait
// groups cycle through free lists like everything else.
func TestZeroCopyExchangeSteadyStateZeroAlloc(t *testing.T) {
	obs.DisableTracing()
	hits := mZeroCopyHits.Value()
	w := newZCSteadyWorld(t)
	defer w.close()
	w.step(t)
	w.step(t) // warm pools, mailboxes and worker stacks
	if mZeroCopyHits.Value() == hits {
		t.Fatal("warm-up took no fast-path sends; the shape is wrong for this test")
	}
	allocs := testing.AllocsPerRun(50, func() { w.step(t) })
	if allocs != 0 {
		t.Fatalf("steady-state zero-copy Exchange allocates: %v allocs per transfer step", allocs)
	}
}
