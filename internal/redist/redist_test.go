package redist

import (
	"math/rand"
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/schedule"
)

func fingerprint(idx []int) float64 {
	v := 1.0
	for _, i := range idx {
		v = v*131 + float64(i)
	}
	return v
}

func forEachIndex(dims []int, fn func(idx []int)) {
	for _, d := range dims {
		if d == 0 {
			return
		}
	}
	idx := make([]int, len(dims))
	for {
		fn(idx)
		a := len(dims) - 1
		for a >= 0 {
			idx[a]++
			if idx[a] < dims[a] {
				break
			}
			idx[a] = 0
			a--
		}
		if a < 0 {
			return
		}
	}
}

func fillByGlobal(t *dad.Template) [][]float64 {
	locals := make([][]float64, t.NumProcs())
	for r := range locals {
		locals[r] = make([]float64, t.LocalCount(r))
	}
	forEachIndex(t.Dims(), func(idx []int) {
		r := t.OwnerOf(idx)
		locals[r][t.LocalOffset(r, idx)] = fingerprint(idx)
	})
	return locals
}

func verify(t *testing.T, dst *dad.Template, dstLocals [][]float64) {
	t.Helper()
	forEachIndex(dst.Dims(), func(idx []int) {
		r := dst.OwnerOf(idx)
		got := dstLocals[r][dst.LocalOffset(r, idx)]
		if got != fingerprint(idx) {
			t.Errorf("index %v on dst rank %d: got %v, want %v", idx, r, got, fingerprint(idx))
		}
	})
}

func tpl(t *testing.T, dims []int, axes ...dad.AxisDist) *dad.Template {
	t.Helper()
	out, err := dad.NewTemplate(dims, axes)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestExecuteLocal(t *testing.T) {
	src := tpl(t, []int{10, 10}, dad.BlockAxis(2), dad.BlockAxis(2))
	dst := tpl(t, []int{10, 10}, dad.CyclicAxis(3), dad.CollapsedAxis())
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, dst.NumProcs())
	for r := range dstLocals {
		dstLocals[r] = make([]float64, dst.LocalCount(r))
	}
	ExecuteLocal(s, srcLocals, dstLocals)
	verify(t, dst, dstLocals)
}

// runExchange stands up a world of M+N ranks (sources first) and performs
// one Exchange, returning the destination buffers.
func runExchange(t *testing.T, src, dst *dad.Template) [][]float64 {
	t.Helper()
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	m, n := src.NumProcs(), dst.NumProcs()
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, n)
	var mu sync.Mutex
	comm.Run(m+n, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: m}
		var sl, dl []float64
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		}
		if c.Rank() >= m {
			dl = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		if err := Exchange(c, s, lay, sl, dl, 0); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			mu.Unlock()
		}
	})
	return dstLocals
}

func TestExchangeBasic(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.BlockAxis(4))
	verify(t, dst, runExchange(t, src, dst))
}

func TestExchangeFigure1(t *testing.T) {
	src := tpl(t, []int{6, 6, 6}, dad.BlockAxis(2), dad.BlockAxis(2), dad.BlockAxis(2))
	dst := tpl(t, []int{6, 6, 6}, dad.BlockAxis(3), dad.BlockAxis(3), dad.BlockAxis(3))
	verify(t, dst, runExchange(t, src, dst))
}

func TestExchangeMixedKinds(t *testing.T) {
	src := tpl(t, []int{8, 9}, dad.CyclicAxis(2), dad.GenBlockAxis([]int{2, 7}))
	dst := tpl(t, []int{8, 9}, dad.BlockCyclicAxis(2, 3), dad.BlockAxis(2))
	verify(t, dst, runExchange(t, src, dst))
}

func TestExchangeSelfTranspose(t *testing.T) {
	// Same cohort both sides: row-block to column-block on 4 ranks.
	src := tpl(t, []int{8, 8}, dad.BlockAxis(4), dad.CollapsedAxis())
	dst := tpl(t, []int{8, 8}, dad.CollapsedAxis(), dad.BlockAxis(4))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, 4)
	var mu sync.Mutex
	comm.Run(4, func(c *comm.Comm) {
		dl := make([]float64, dst.LocalCount(c.Rank()))
		if err := Exchange(c, s, Layout{0, 0}, srcLocals[c.Rank()], dl, 0); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		mu.Lock()
		dstLocals[c.Rank()] = dl
		mu.Unlock()
	})
	verify(t, dst, dstLocals)
}

func TestExchangeBufferValidation(t *testing.T) {
	src := tpl(t, []int{8}, dad.BlockAxis(2))
	dst := tpl(t, []int{8}, dad.BlockAxis(2))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	comm.Run(4, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 2}
		switch c.Rank() {
		case 0:
			// Wrong source buffer length.
			err := Exchange(c, s, lay, make([]float64, 3), nil, 0)
			if err == nil {
				t.Error("short source buffer accepted")
			}
			// Send the real data so destinations can finish.
			if err := Exchange(c, s, lay, make([]float64, 4), nil, 0); err != nil {
				t.Error(err)
			}
		case 1:
			// Nil source buffer on a source rank.
			if err := Exchange(c, s, lay, nil, nil, 0); err == nil {
				t.Error("nil source buffer accepted")
			}
			if err := Exchange(c, s, lay, make([]float64, 4), nil, 0); err != nil {
				t.Error(err)
			}
		default:
			if err := Exchange(c, s, lay, nil, make([]float64, 4), 0); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestConcurrentTransfersDistinctTags(t *testing.T) {
	// Two arrays aligned to the same templates move concurrently on
	// distinct tags; both must arrive intact.
	src := tpl(t, []int{16}, dad.BlockAxis(2))
	dst := tpl(t, []int{16}, dad.CyclicAxis(2))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	a := fillByGlobal(src)
	b := make([][]float64, 2)
	for r := range b {
		b[r] = make([]float64, len(a[r]))
		for i := range b[r] {
			b[r][i] = -a[r][i]
		}
	}
	gotA := make([][]float64, 2)
	gotB := make([][]float64, 2)
	var mu sync.Mutex
	comm.Run(4, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 2}
		var wg sync.WaitGroup
		if c.Rank() < 2 {
			wg.Add(2)
			go func() { defer wg.Done(); Exchange(c, s, lay, a[c.Rank()], nil, 0) }()
			go func() { defer wg.Done(); Exchange(c, s, lay, b[c.Rank()], nil, 1) }()
			wg.Wait()
		} else {
			da := make([]float64, dst.LocalCount(c.Rank()-2))
			db := make([]float64, dst.LocalCount(c.Rank()-2))
			wg.Add(2)
			go func() { defer wg.Done(); Exchange(c, s, lay, nil, da, 0) }()
			go func() { defer wg.Done(); Exchange(c, s, lay, nil, db, 1) }()
			wg.Wait()
			mu.Lock()
			gotA[c.Rank()-2] = da
			gotB[c.Rank()-2] = db
			mu.Unlock()
		}
	})
	verify(t, dst, gotA)
	forEachIndex(dst.Dims(), func(idx []int) {
		r := dst.OwnerOf(idx)
		if got := gotB[r][dst.LocalOffset(r, idx)]; got != -fingerprint(idx) {
			t.Errorf("array B at %v: got %v", idx, got)
		}
	})
}

func TestLinearExchangeRowMajor(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.CyclicAxis(2))
	srcLin := linear.NewRowMajor(src)
	dstLin := linear.NewRowMajor(dst)
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, 2)
	var mu sync.Mutex
	comm.Run(5, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 3}
		var sl, dl []float64
		if c.Rank() < 3 {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-3))
		}
		if err := LinearExchange(c, srcLin, dstLin, lay, 3, 2, sl, dl, 0); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-3] = dl
			mu.Unlock()
		}
	})
	verify(t, dst, dstLocals)
}

func TestLinearExchange2D(t *testing.T) {
	src := tpl(t, []int{6, 8}, dad.BlockAxis(2), dad.BlockAxis(2))
	dst := tpl(t, []int{6, 8}, dad.CollapsedAxis(), dad.BlockAxis(3))
	srcLin := linear.NewRowMajor(src)
	dstLin := linear.NewRowMajor(dst)
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, 3)
	var mu sync.Mutex
	comm.Run(7, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 4}
		var sl, dl []float64
		if c.Rank() < 4 {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-4))
		}
		if err := LinearExchange(c, srcLin, dstLin, lay, 4, 3, sl, dl, 0); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-4] = dl
			mu.Unlock()
		}
	})
	verify(t, dst, dstLocals)
}

func TestLinearExchangeLengthMismatch(t *testing.T) {
	src := tpl(t, []int{8}, dad.BlockAxis(2))
	dst := tpl(t, []int{9}, dad.BlockAxis(2))
	comm.Run(4, func(c *comm.Comm) {
		err := LinearExchange(c, linear.NewRowMajor(src), linear.NewRowMajor(dst),
			Layout{0, 2}, 2, 2, make([]float64, 4), make([]float64, 5), 0)
		if err == nil {
			t.Error("mismatched linearizations accepted")
		}
	})
}

// Property: Exchange agrees with ExecuteLocal on random template pairs.
func TestPropertyExchangeMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		dims := []int{1 + rng.Intn(7), 1 + rng.Intn(7)}
		mk := func() *dad.Template {
			axes := []dad.AxisDist{
				dad.BlockAxis(1 + rng.Intn(3)),
				dad.CyclicAxis(1 + rng.Intn(3)),
			}
			if rng.Intn(2) == 0 {
				axes[0], axes[1] = axes[1], axes[0]
			}
			out, err := dad.NewTemplate(dims, axes)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		src, dst := mk(), mk()
		s, err := schedule.Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		srcLocals := fillByGlobal(src)
		want := make([][]float64, dst.NumProcs())
		for r := range want {
			want[r] = make([]float64, dst.LocalCount(r))
		}
		ExecuteLocal(s, srcLocals, want)
		got := runExchange(t, src, dst)
		for r := range want {
			for i := range want[r] {
				if got[r][i] != want[r][i] {
					t.Fatalf("trial %d: rank %d elem %d: parallel %v local %v", trial, r, i, got[r][i], want[r][i])
				}
			}
		}
	}
}
