// The unified transfer engine. All four exported exchange paths —
// schedule-driven and linear, fenced and unfenced — are thin wrappers that
// build a plan and hand it to runTransfer, the single send/recv loop in
// this package. The plan abstracts what differs (which pairwise messages
// exist, how each is packed/validated/unpacked, what a lost source
// invalidates); the engine owns everything that must behave identically
// (message pooling, epoch stamping, liveness checks, stale-epoch
// rejection, suspicion, drain-after-error hygiene, metrics, tracing).
//
// The engine is generic over the element type T and over the concrete plan
// type P. P is a type parameter rather than an interface-typed argument so
// the schedule plan can be a by-value struct: no boxing, no per-call heap
// allocation on the steady-state path.

package redist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mxn/internal/bufpool"
	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

// xferMsg is the one wire payload of the transfer engine: an element-kind
// tag, an epoch stamp (0 on unfenced transfers), and the packed elements
// as raw bytes. have carries the linear-position metadata of
// receiver-driven replies; it is nil on schedule-driven messages.
//
// Messages are pooled: senders obtain one with newMsg, receivers return it
// with recycle after unpacking. Messages dropped in transit (sends to dead
// ranks) are simply collected by the GC.
type xferMsg struct {
	epoch uint64
	kind  dad.ElemKind
	elems int
	data  []byte
	have  linear.Set
	// ack marks a credit message of the memory-bounded protocol: no
	// data, sent back to a chunk's sender on the same data tag after the
	// chunk is unpacked (see budget.go).
	ack bool
	// done, when non-nil, marks a zero-copy message: data is a borrowed
	// view of the sender's source slice, not a pooled buffer. recycle
	// signals done instead of returning data to the pool, and the sending
	// engine waits on it before returning to the caller — the rendezvous
	// that makes lending the caller's memory safe.
	done *sync.WaitGroup
}

// maxFreeMsgs bounds the message free list; surplus puts go to the GC.
const maxFreeMsgs = 256

var (
	mMsgPoolHits   = obs.Default().Counter("redist.msg_pool_hits")
	mMsgPoolMisses = obs.Default().Counter("redist.msg_pool_misses")
)

// msgPool is a mutex-guarded free list (not sync.Pool, whose victim cache
// is dropped at GC and would make the zero-alloc guarantee flaky). The
// backing slice is pre-sized so steady-state put never appends beyond
// capacity.
var msgPool = struct {
	mu   sync.Mutex
	free []*xferMsg
}{free: make([]*xferMsg, 0, maxFreeMsgs)}

func getMsg() *xferMsg {
	msgPool.mu.Lock()
	if n := len(msgPool.free); n > 0 {
		m := msgPool.free[n-1]
		msgPool.free[n-1] = nil
		msgPool.free = msgPool.free[:n-1]
		msgPool.mu.Unlock()
		mMsgPoolHits.Inc()
		return m
	}
	msgPool.mu.Unlock()
	mMsgPoolMisses.Inc()
	return new(xferMsg)
}

// newMsg builds a pooled message carrying elems elements of type T, with
// the data buffer drawn from bufpool. The caller packs into Data (via
// elemsOf) before sending.
func newMsg[T Elem](epoch uint64, elems int) *xferMsg {
	m := getMsg()
	m.epoch = epoch
	m.kind = kindOf[T]()
	m.elems = elems
	m.data = bufpool.Get(elems * elemSize[T]())
	m.have = nil
	addInFlight(len(m.data))
	return m
}

// Packed-bytes accounting: every data buffer drawn for a transfer
// message counts toward the process-wide in-flight total from newMsg
// until recycle. The high-water mark is the headline of redistbench's
// HighWater phase: the peak transfer-payload memory the engine had
// resident at once, the quantity MaxBytesInFlight exists to bound.
var (
	bytesInFlight  atomic.Int64
	bytesHighWater atomic.Int64
)

func init() {
	obs.Default().RegisterFunc("redist.packed_bytes_in_flight", bytesInFlight.Load)
	obs.Default().RegisterFunc("redist.packed_bytes_high_water", bytesHighWater.Load)
	obs.Default().RegisterFunc("redist.zerocopy_hit_rate_pct", func() int64 {
		h := int64(mZeroCopyHits.Value())
		m := int64(mZeroCopyMisses.Value())
		if h+m == 0 {
			return 0
		}
		return h * 100 / (h + m)
	})
}

func addInFlight(n int) {
	if n == 0 {
		return
	}
	cur := bytesInFlight.Add(int64(n))
	for {
		hw := bytesHighWater.Load()
		if cur <= hw || bytesHighWater.CompareAndSwap(hw, cur) {
			return
		}
	}
}

// PackedBytesHighWater returns the peak packed transfer-payload bytes
// resident at once since the last reset (process-wide, across every
// concurrent transfer).
func PackedBytesHighWater() int64 { return bytesHighWater.Load() }

// ResetPackedBytesHighWater rebases the high-water mark to the bytes
// currently in flight, so a measurement phase sees only its own peak.
func ResetPackedBytesHighWater() { bytesHighWater.Store(bytesInFlight.Load()) }

// recycle returns a message and its buffer to their pools. A zero-copy
// message's data is the sender's own memory, not a pooled buffer: it is
// released by signalling the rendezvous (after the message itself is
// back in the pool, so the sender's Wait orders after all receiver work).
func recycle(m *xferMsg) {
	if done := m.done; done != nil {
		*m = xferMsg{}
		putMsg(m)
		done.Done()
		return
	}
	bytesInFlight.Add(-int64(len(m.data)))
	bufpool.Put(m.data)
	*m = xferMsg{}
	putMsg(m)
}

func putMsg(m *xferMsg) {
	msgPool.mu.Lock()
	if len(msgPool.free) < maxFreeMsgs {
		msgPool.free = append(msgPool.free, m)
	}
	msgPool.mu.Unlock()
}

// Zero-copy fast-path instruments: hits are messages sent directly from
// the caller's source slice (no pack, no copy), misses are messages that
// were eligible for consideration (opt-in set) but had to fall back to
// packing. The derived gauge exposes the hit rate in Snapshot/expvar.
var (
	mZeroCopyHits   = obs.Default().Counter("redist.zerocopy_hits")
	mZeroCopyMisses = obs.Default().Counter("redist.zerocopy_misses")
)

// zcWaitPool recycles the rendezvous WaitGroups of zero-copy sends so
// the steady-state path stays allocation-free.
var zcWaitPool = struct {
	mu   sync.Mutex
	free []*sync.WaitGroup
}{}

func getZCWait() *sync.WaitGroup {
	zcWaitPool.mu.Lock()
	if n := len(zcWaitPool.free); n > 0 {
		wg := zcWaitPool.free[n-1]
		zcWaitPool.free[n-1] = nil
		zcWaitPool.free = zcWaitPool.free[:n-1]
		zcWaitPool.mu.Unlock()
		return wg
	}
	zcWaitPool.mu.Unlock()
	return new(sync.WaitGroup)
}

func putZCWait(wg *sync.WaitGroup) {
	zcWaitPool.mu.Lock()
	if len(zcWaitPool.free) < 64 {
		zcWaitPool.free = append(zcWaitPool.free, wg)
	}
	zcWaitPool.mu.Unlock()
}

// pairOp describes one pairwise message of a plan from the local rank's
// point of view.
type pairOp struct {
	group int // peer's communicator group rank
	rank  int // peer's cohort rank (error and trace attribution)
	elems int // elements in the message
}

// plan is what a transfer path supplies to the engine: the set of
// pairwise messages this rank sends and expects, and the path-specific
// pack/validate/unpack/loss rules. Implementations: schedPlan (by value,
// allocation-free) and *linPlan.
type plan[T Elem] interface {
	// proto names the path ("exchange" or "linear") in typed errors.
	proto() string
	// srcRank/dstRank are this rank's cohort ranks, -1 outside the cohort.
	srcRank() int
	dstRank() int
	// dstLen is len(dstLocal); sizes the fenced validity bitmap.
	dstLen() int

	sends() int
	sendOp(i int) pairOp
	// sendSet returns position metadata to attach to the i'th outgoing
	// message (linear replies); nil for schedule-driven messages.
	sendSet(i int) linear.Set
	// sendView returns a byte view taken directly from the caller's
	// source slice for the i'th outgoing message when that message is a
	// single run contiguous (and suitably aligned) in it and the plan's
	// zero-copy opt-in is set; nil when the message must be packed. The
	// view aliases the caller's memory — the engine only lends it to
	// in-process receivers and rendezvouses before returning.
	sendView(i int) []byte
	pack(i int, out []T)
	// packRange packs the window [elemOff, elemOff+len(out)) of the
	// i'th outgoing message's packed element order: the chunk primitive
	// of the memory-bounded path. Consecutive windows tiling the message
	// must equal one pack of the whole message.
	packRange(i, elemOff int, out []T)

	recvs() int
	recvOp(i int) pairOp
	// check validates an arrived message against the i'th expectation
	// (element counts, position sets); kind and byte-length checks are
	// the engine's.
	check(i int, m *xferMsg) error
	// checkHave validates only the position metadata of a message
	// opening the i'th expectation (the first chunk of a budgeted
	// message, whose element count covers just its own window).
	checkHave(i int, m *xferMsg) error
	unpack(i int, data []T)
	// unpackRange unpacks a chunk holding the window
	// [elemOff, elemOff+len(data)) of the i'th incoming message.
	unpackRange(i, elemOff int, data []T)

	// lose applies FailRedistribute to the i'th incoming message whose
	// source is dead: invalidate what it would have delivered, replan if
	// the path supports it.
	lose(i int, f *fenceRun)
	// finish runs plan-level validation after all receives; lost reports
	// whether any incoming message was lost to a dead rank.
	finish(lost bool) error
}

// fenceRun is the per-call state of a fenced transfer. nil means unfenced:
// blocking receives, no epoch stamps, no liveness checks.
type fenceRun struct {
	opts       FenceOpts
	entryEpoch uint64
	out        *Outcome
	downSeen   map[int]bool
	// abortOnDeadSend: under FailStrict, a sender aborts on a dead
	// destination (schedule-driven: the missing message would wedge the
	// protocol). Receiver-driven replies just skip dead requesters.
	abortOnDeadSend bool
}

func newFenceRun(opts FenceOpts, abortOnDeadSend bool) *fenceRun {
	return newFenceRunAt(opts, abortOnDeadSend, opts.Membership.Epoch())
}

// newFenceRunAt pins an explicit entry epoch instead of sampling the
// live one. The resize migration uses it: every rank must enter the
// migration at the resize's prepare epoch, even if a death has already
// bumped the live epoch past it — otherwise ranks entering before and
// after the death would fence the same transfer at different epochs and
// discard each other's traffic as stale.
func newFenceRunAt(opts FenceOpts, abortOnDeadSend bool, entryEpoch uint64) *fenceRun {
	opts = opts.withDefaults()
	return &fenceRun{
		opts:            opts,
		entryEpoch:      entryEpoch,
		out:             &Outcome{Epoch: entryEpoch},
		downSeen:        map[int]bool{},
		abortOnDeadSend: abortOnDeadSend,
	}
}

func (f *fenceRun) noteDown(group int) {
	if !f.downSeen[group] {
		f.downSeen[group] = true
		f.out.Down = append(f.out.Down, group)
	}
}

// runTransfer is the transfer loop: the only place in this package that
// sends or receives data messages. Sources pack and post every pairwise
// message without waiting; destinations consume exactly the messages their
// plan expects. On error the destination keeps draining its remaining
// expected messages (with a give-up timeout when fenced) so nothing stays
// queued under dataTag to cross-match a later transfer. A positive budget
// selects the memory-bounded chunked protocol instead (budget.go).
func runTransfer[T Elem, P plan[T]](c *comm.Comm, pl P, dataTag int, f *fenceRun, budget int) error {
	if budget > 0 {
		return runBudgeted[T](c, pl, dataTag, f, budget)
	}
	// Zero-copy sends lend the caller's source slice to in-process
	// receivers; the rendezvous below holds this rank until every lent
	// view has been unpacked and recycled, so the caller may mutate its
	// source the moment runTransfer returns — error paths included, since
	// receivers recycle every expected message even while draining.
	var zcWait *sync.WaitGroup
	err := runDirect[T](c, pl, dataTag, f, &zcWait)
	if zcWait != nil {
		zcWait.Wait()
		putZCWait(zcWait)
	}
	return err
}

// runDirect is the unbudgeted transfer loop body; zcWait is created
// lazily on the first zero-copy send so the legacy path pays nothing.
func runDirect[T Elem, P plan[T]](c *comm.Comm, pl P, dataTag int, f *fenceRun, zcWait **sync.WaitGroup) error {
	tr := obs.Trace()
	wantKind := kindOf[T]()
	esz := elemSize[T]()
	var epoch uint64
	if f != nil {
		epoch = f.entryEpoch
	}

	// Send phase. A FailStrict abort on a dead destination does not
	// return yet: the error is held so the receive phase below still
	// drains whatever peers already posted to this rank — returning
	// early would leave their messages queued under dataTag to
	// cross-match the next transfer on the same tag (the same
	// tag-pollution class the receive path already guards against).
	var sendAbort error
	for i, n := 0, pl.sends(); i < n; i++ {
		op := pl.sendOp(i)
		if f != nil && !f.opts.Membership.IsAlive(op.group) {
			f.noteDown(op.group)
			mSendsSkippedDead.Inc()
			if f.abortOnDeadSend && f.opts.Policy == FailStrict {
				mRankdownAborts.Inc()
				sendAbort = &core.ErrRankDown{Rank: op.group, Epoch: f.opts.Membership.Epoch()}
				break
			}
			continue
		}
		if f == nil {
			if view := pl.sendView(i); view != nil {
				// Contiguous-run fast path: send a view of the caller's
				// slice, zero pack, zero copy. Only for in-process peers
				// (a mailbox delivers the same slice) and never to self —
				// the legacy path's pack keeps aliased src/dst safe there.
				if op.group != c.Rank() && c.DeliverableLocal(op.group) {
					m := getMsg()
					m.epoch = epoch
					m.kind = wantKind
					m.elems = op.elems
					m.data = view
					m.have = pl.sendSet(i)
					if *zcWait == nil {
						*zcWait = getZCWait()
					}
					(*zcWait).Add(1)
					m.done = *zcWait
					start := time.Now()
					c.Send(op.group, dataTag, m)
					mMsgsSent.Inc()
					mZeroCopyHits.Inc()
					mMsgElems.Observe(int64(op.elems))
					tr.Span(obs.EvSend, "", pl.srcRank(), op.rank, int64(op.elems), start)
					continue
				}
				mZeroCopyMisses.Inc()
			}
		}
		m := newMsg[T](epoch, op.elems)
		m.have = pl.sendSet(i)
		start := time.Now()
		pl.pack(i, elemsOf[T](m.data, op.elems))
		mPackNS.ObserveSince(start)
		tr.Span(obs.EvPack, "", pl.srcRank(), op.rank, int64(op.elems), start)
		c.Send(op.group, dataTag, m)
		mMsgsSent.Inc()
		mElemsPacked.Add(uint64(op.elems))
		mMsgElems.Observe(int64(op.elems))
		tr.Span(obs.EvSend, "", pl.srcRank(), op.rank, int64(op.elems), start)
	}
	if pl.srcRank() >= 0 && sendAbort == nil {
		mTransfers.Inc()
	}

	// Receive phase.
	nRecv := pl.recvs()
	if nRecv == 0 && pl.dstRank() < 0 {
		if sendAbort != nil {
			mErrors.Inc()
		}
		return sendAbort
	}
	if f != nil && pl.dstRank() >= 0 {
		f.out.Validity = dad.NewValidity(pl.dstLen())
	}
	firstErr := sendAbort
	lost := false
	for i := 0; i < nRecv; i++ {
		op := pl.recvOp(i)
		if f == nil {
			payload, _ := c.Recv(op.group, dataTag)
			mMsgsRecv.Inc()
			m, ok := payload.(*xferMsg)
			if firstErr != nil {
				mDrained.Inc()
				if ok {
					recycle(m)
				}
				continue
			}
			if !ok {
				firstErr = fmt.Errorf("redist: destination rank %d received %T, want transfer message", pl.dstRank(), payload)
				continue
			}
			firstErr = consume[T](pl, i, op, m, wantKind, esz, tr)
			continue
		}
		waited := time.Duration(0)
		for {
			if firstErr == nil && !f.opts.Membership.IsAlive(op.group) {
				f.noteDown(op.group)
				if f.opts.Policy == FailStrict {
					mRankdownAborts.Inc()
					firstErr = &core.ErrRankDown{Rank: op.group, Epoch: f.opts.Membership.Epoch()}
				} else {
					pl.lose(i, f)
					lost = true
				}
				break
			}
			payload, _, ok := c.RecvTimeout(op.group, dataTag, f.opts.PollInterval)
			if !ok {
				waited += f.opts.PollInterval
				if f.opts.SuspectAfter > 0 && waited >= f.opts.SuspectAfter {
					f.opts.Membership.MarkDown(op.group)
				}
				if firstErr != nil && waited >= maxDur(f.opts.SuspectAfter, 10*f.opts.PollInterval) {
					// Draining after an error: give up on sources that
					// stay silent.
					break
				}
				continue
			}
			// Every consumed message counts, including discards: mMsgsRecv
			// is "messages taken off the wire", matching the unfenced path.
			mMsgsRecv.Inc()
			m, isMsg := payload.(*xferMsg)
			if isMsg && m.epoch != 0 && m.epoch < f.entryEpoch {
				// Leftover of a pre-failure attempt; discard and keep
				// waiting for the current epoch's message.
				mStaleEpoch.Inc()
				recycle(m)
				continue
			}
			if firstErr != nil {
				mDrained.Inc()
				if isMsg {
					recycle(m)
				}
				break
			}
			if isMsg && m.epoch > f.entryEpoch {
				// The peer already re-planned into a NEWER epoch than this
				// rank entered at. Consuming its message against our stale
				// plan would corrupt data silently whenever the element
				// counts happen to match; reject with a typed error so the
				// caller re-enters at the current epoch.
				mStaleLocal.Inc()
				remote := m.epoch
				recycle(m)
				firstErr = &StaleLocalEpochError{Transfer: pl.proto(), Rank: pl.dstRank(), Peer: op.rank, Local: f.entryEpoch, Remote: remote}
				break
			}
			if !isMsg {
				firstErr = fmt.Errorf("redist: destination rank %d received %T, want transfer message", pl.dstRank(), payload)
				break
			}
			firstErr = consume[T](pl, i, op, m, wantKind, esz, tr)
			break
		}
	}
	if firstErr != nil {
		mErrors.Inc()
		return firstErr
	}
	if err := pl.finish(lost); err != nil {
		mErrors.Inc()
		return err
	}
	if f != nil && pl.dstRank() >= 0 && f.opts.Desc != nil && !f.out.Validity.AllValid() {
		f.opts.Desc.SetValidity(pl.dstRank(), f.out.Validity)
	}
	if pl.dstRank() >= 0 {
		mTransfers.Inc()
	}
	return nil
}

// consume validates, unpacks and recycles one arrived message.
func consume[T Elem, P plan[T]](pl P, i int, op pairOp, m *xferMsg, wantKind dad.ElemKind, esz int, tr *obs.Tracer) error {
	defer recycle(m)
	if m.kind != wantKind {
		return &ElemKindError{Transfer: pl.proto(), DstRank: pl.dstRank(), SrcRank: op.rank, Got: m.kind, Want: wantKind}
	}
	if len(m.data) != m.elems*esz {
		return &ElemCountError{Transfer: pl.proto(), DstRank: pl.dstRank(), SrcRank: op.rank, Got: len(m.data) / esz, Want: m.elems}
	}
	if err := pl.check(i, m); err != nil {
		return err
	}
	start := time.Now()
	pl.unpack(i, elemsOf[T](m.data, m.elems))
	mUnpackNS.ObserveSince(start)
	mElemsUnpack.Add(uint64(m.elems))
	tr.Span(obs.EvUnpack, "", pl.dstRank(), op.rank, int64(m.elems), start)
	return nil
}

// schedPlan is the schedule-driven plan: pairwise messages come straight
// from the schedule's per-rank views via the indexed (allocation-free)
// accessors. It is used by value so building it costs nothing.
type schedPlan[T Elem] struct {
	s        *schedule.Schedule
	lay      Layout
	src, dst int // cohort ranks, -1 outside the cohort
	srcLocal []T
	dstLocal []T
	zc       bool // TransferOpts.ZeroCopyLocal: offer contiguous-run views
}

func (p schedPlan[T]) proto() string { return "exchange" }
func (p schedPlan[T]) srcRank() int  { return p.src }
func (p schedPlan[T]) dstRank() int  { return p.dst }
func (p schedPlan[T]) dstLen() int   { return len(p.dstLocal) }

func (p schedPlan[T]) sends() int {
	if p.src < 0 {
		return 0
	}
	return p.s.OutDegree(p.src)
}

func (p schedPlan[T]) sendOp(i int) pairOp {
	pp := p.s.OutgoingAt(p.src, i)
	return pairOp{group: p.lay.DstBase + pp.DstRank, rank: pp.DstRank, elems: pp.Elems}
}

func (p schedPlan[T]) sendSet(i int) linear.Set { return nil }

// sendView offers the contiguous-run fast path: a message whose schedule
// entry is a single run contiguous in srcLocal can be sent as a view of
// the caller's slice, skipping pack and buffer entirely. Gated on the
// ZeroCopyLocal opt-in, on single-run shape, and on the element view
// meeting the alignment bufpool buffers guarantee (so the receive-side
// reinterpret sees no difference from a pooled buffer).
func (p schedPlan[T]) sendView(i int) []byte {
	if !p.zc {
		return nil
	}
	pp := p.s.OutgoingAt(p.src, i)
	if len(pp.Runs) != 1 {
		mZeroCopyMisses.Inc()
		return nil
	}
	run := pp.Runs[0]
	view := p.srcLocal[run.SrcOff : run.SrcOff+run.N]
	if !alignedFor(view) {
		mZeroCopyMisses.Inc()
		return nil
	}
	return bytesOf(view)
}

func (p schedPlan[T]) pack(i int, out []T) {
	schedule.PackSlice(p.s.OutgoingAt(p.src, i), p.srcLocal, out)
}

func (p schedPlan[T]) packRange(i, elemOff int, out []T) {
	schedule.PackSliceRange(p.s.OutgoingAt(p.src, i), p.srcLocal, out, elemOff)
}

func (p schedPlan[T]) recvs() int {
	if p.dst < 0 {
		return 0
	}
	return p.s.InDegree(p.dst)
}

func (p schedPlan[T]) recvOp(i int) pairOp {
	pp := p.s.IncomingAt(p.dst, i)
	return pairOp{group: p.lay.SrcBase + pp.SrcRank, rank: pp.SrcRank, elems: pp.Elems}
}

func (p schedPlan[T]) check(i int, m *xferMsg) error {
	pp := p.s.IncomingAt(p.dst, i)
	if m.elems != pp.Elems {
		return &ElemCountError{Transfer: "exchange", DstRank: p.dst, SrcRank: pp.SrcRank, Got: m.elems, Want: pp.Elems}
	}
	return nil
}

// checkHave is a no-op: schedule-driven messages carry no position
// metadata, and a budgeted chunk's element count is the engine's check.
func (p schedPlan[T]) checkHave(i int, m *xferMsg) error { return nil }

func (p schedPlan[T]) unpack(i int, data []T) {
	schedule.UnpackSlice(p.s.IncomingAt(p.dst, i), p.dstLocal, data)
}

func (p schedPlan[T]) unpackRange(i, elemOff int, data []T) {
	schedule.UnpackSliceRange(p.s.IncomingAt(p.dst, i), p.dstLocal, data, elemOff)
}

// lose invalidates the elements the dead pair would have delivered and
// (once per transfer) re-plans against the survivors, invalidating the
// schedule cache entry so later transfers rebuild from current templates.
func (p schedPlan[T]) lose(i int, f *fenceRun) {
	pp := p.s.IncomingAt(p.dst, i)
	for _, run := range pp.Runs {
		f.out.Validity.InvalidateRange(run.DstOff, run.N)
	}
	mElemsInvalidated.Add(uint64(pp.Elems))
	if f.out.Replanned == nil {
		start := time.Now()
		if f.opts.Cache != nil {
			f.opts.Cache.Invalidate(p.s.Src, p.s.Dst)
		}
		m := f.opts.Membership
		f.out.Replanned = schedule.Restrict(p.s,
			func(r int) bool { return m.IsAlive(p.lay.SrcBase + r) },
			func(r int) bool { return m.IsAlive(p.lay.DstBase + r) })
		mReplanNS.ObserveSince(start)
		mReplans.Inc()
	}
}

func (p schedPlan[T]) finish(lost bool) error { return nil }

// linPlan is the receiver-driven plan, built after the request phase: the
// send side answers the collected requests, the receive side expects one
// reply per source it requested from (including sources already dead at
// entry, which the engine's liveness check resolves without blocking).
type linPlan[T Elem] struct {
	lay      Layout
	src, dst int
	srcLin   linear.LinearizerT[T]
	dstLin   linear.LinearizerT[T]
	srcLocal []T
	dstLocal []T

	// Send side: one reply per collected request.
	outDst  []int        // requester cohort ranks
	outSets []linear.Set // owned ∩ need per requester

	// Receive side: one expected reply per source rank.
	inSrc  []int        // source cohort ranks
	inSets []linear.Set // expected positions per source (owned ∩ need)

	need    linear.Set // this destination's full position set
	got     int        // positions successfully unpacked
	lostAny bool

	// Scratch sub-sets reused across packRange/unpackRange calls of the
	// memory-bounded path (each call's result is consumed synchronously
	// before the next, so one scratch set per direction suffices).
	packSub   linear.Set
	unpackSub linear.Set
}

func (p *linPlan[T]) proto() string { return "linear" }
func (p *linPlan[T]) srcRank() int  { return p.src }
func (p *linPlan[T]) dstRank() int  { return p.dst }
func (p *linPlan[T]) dstLen() int   { return len(p.dstLocal) }

func (p *linPlan[T]) sends() int { return len(p.outDst) }

func (p *linPlan[T]) sendOp(i int) pairOp {
	return pairOp{group: p.lay.DstBase + p.outDst[i], rank: p.outDst[i], elems: p.outSets[i].Len()}
}

func (p *linPlan[T]) sendSet(i int) linear.Set { return p.outSets[i] }

// sendView is always nil: linear replies are gathered through a
// Linearizer and have no contiguous-run representation to borrow.
func (p *linPlan[T]) sendView(i int) []byte { return nil }

func (p *linPlan[T]) pack(i int, out []T) {
	p.srcLin.Pack(p.src, p.srcLocal, p.outSets[i], out)
	mLinReplies.Inc()
}

func (p *linPlan[T]) packRange(i, elemOff int, out []T) {
	p.packSub = p.outSets[i].Slice(elemOff, len(out), p.packSub)
	p.srcLin.Pack(p.src, p.srcLocal, p.packSub, out)
	if elemOff == 0 {
		mLinReplies.Inc()
	}
}

func (p *linPlan[T]) recvs() int { return len(p.inSrc) }

func (p *linPlan[T]) recvOp(i int) pairOp {
	return pairOp{group: p.lay.SrcBase + p.inSrc[i], rank: p.inSrc[i], elems: p.inSets[i].Len()}
}

func (p *linPlan[T]) check(i int, m *xferMsg) error {
	expect := p.inSets[i]
	if !m.have.Equal(expect) || m.elems != expect.Len() {
		return &ElemCountError{Transfer: "linear", DstRank: p.dst, SrcRank: p.inSrc[i], Got: m.elems, Want: expect.Len()}
	}
	return nil
}

// checkHave validates the position metadata the first chunk of a
// budgeted message carries: the sender's full reply set, which must
// equal this destination's expected intersection. Chunk element counts
// are the engine's concern.
func (p *linPlan[T]) checkHave(i int, m *xferMsg) error {
	expect := p.inSets[i]
	if !m.have.Equal(expect) {
		return &ElemCountError{Transfer: "linear", DstRank: p.dst, SrcRank: p.inSrc[i], Got: m.have.Len(), Want: expect.Len()}
	}
	return nil
}

func (p *linPlan[T]) unpack(i int, data []T) {
	p.dstLin.Unpack(p.dst, p.dstLocal, p.inSets[i], data)
	p.got += len(data)
}

func (p *linPlan[T]) unpackRange(i, elemOff int, data []T) {
	p.unpackSub = p.inSets[i].Slice(elemOff, len(data), p.unpackSub)
	p.dstLin.Unpack(p.dst, p.dstLocal, p.unpackSub, data)
	p.got += len(data)
}

// lose invalidates the destination positions the dead source owned:
// Unpack a tracking buffer of ones through the lost set, then invalidate
// everywhere a one landed — no new Linearizer surface needed.
func (p *linPlan[T]) lose(i int, f *fenceRun) {
	p.lostAny = true
	lost := p.inSets[i]
	if lost.Len() == 0 {
		return
	}
	track := make([]T, len(p.dstLocal))
	ones := make([]T, lost.Len())
	var one T
	switch v := any(&one).(type) {
	case *float64:
		*v = 1
	case *float32:
		*v = 1
	case *int64:
		*v = 1
	case *int32:
		*v = 1
	case *complex128:
		*v = 1
	}
	for j := range ones {
		ones[j] = one
	}
	p.dstLin.Unpack(p.dst, track, lost, ones)
	var zero T
	for j, v := range track {
		if v != zero {
			f.out.Validity.Invalidate(j)
		}
	}
	mElemsInvalidated.Add(uint64(lost.Len()))
	mReplans.Inc()
}

// finish checks total coverage: every needed position arrived exactly
// once. Skipped when a source was lost — the validity bitmap already
// records the shortfall.
func (p *linPlan[T]) finish(lost bool) error {
	if p.dst < 0 || lost || p.lostAny {
		return nil
	}
	if want := p.need.Len(); p.got != want {
		return &ElemCountError{Transfer: "linear", DstRank: p.dst, SrcRank: -1, Got: p.got, Want: want}
	}
	return nil
}
