package redist

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mxn/internal/bufpool"
	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/faultconn"
	"mxn/internal/schedule"
	"mxn/internal/session"
	"mxn/internal/transport"
)

// The wire-path differential: the same cross-world exchange executed
// over real TCP sessions twice — once on the vectored scatter-gather
// path (session.Conn implements transport.OwnedSender) and once with
// the conns wrapped so only the legacy copying Send is visible — must
// produce bit-identical destinations, while the physical links flap.

func wireCfg() session.Config {
	return session.Config{
		MaxAttempts:      50,
		MaxElapsed:       30 * time.Second,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
		HandshakeTimeout: 5 * time.Second,
	}
}

// flappingSessionPair establishes one session over loopback TCP whose
// server-side physical conns die after flapAfter messages, forcing
// resume-replay traffic through whichever wire path is under test.
func flappingSessionPair(t *testing.T, flapAfter int) (cli, srv transport.Conn) {
	t.Helper()
	raw, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := faultconn.WrapListener(raw, faultconn.Scenario{Seed: 42, FlapAfter: flapAfter})
	lst := session.WrapListener(flaky, wireCfg())
	t.Cleanup(func() { lst.Close() })

	type acc struct {
		c   transport.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := lst.Accept()
		ch <- acc{c, err}
	}()
	c, err := session.Dial("tcp", lst.Addr(), wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	return c, a.c
}

// plainConn hides the optional vectored/owned interfaces of the wrapped
// conn, so comm's forwarding falls back to the legacy copying encode.
type plainConn struct{ transport.Conn }

// runWireExchangeT performs the remote_test.go cross-world exchange over
// a flapping TCP session, on either the vectored or the legacy path.
func runWireExchangeT[T Elem](t *testing.T, conv func(float64) T, budget int, plain bool) [][]T {
	t.Helper()
	src := tpl(t, []int{24}, dad.BlockAxis(2))
	dst := tpl(t, []int{24}, dad.CyclicAxis(3))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	const m, n = 2, 3
	// Flap after 5 messages: one exchange crosses the link with ~6 data
	// messages plus acks, so every physical conn dies mid-transfer and
	// the session replays borrowed payloads over the fresh link.
	cli, srv := flappingSessionPair(t, 5)
	if plain {
		cli, srv = plainConn{cli}, plainConn{srv}
	}

	total := m + n
	wa := comm.NewWorld(total)
	wb := comm.NewWorld(total)
	var srcRanks, dstRanks, all []int
	for r := 0; r < total; r++ {
		all = append(all, r)
		if r < m {
			srcRanks = append(srcRanks, r)
		} else {
			dstRanks = append(dstRanks, r)
		}
	}
	pa := wa.ConnectPeer(cli, dstRanks)
	pb := wb.ConnectPeer(srv, srcRanks)
	t.Cleanup(func() { pa.Close(); pb.Close(); cli.Close(); srv.Close() })
	csA := wa.SharedGroup(1, all)
	csB := wb.SharedGroup(1, all)

	srcLocals := fillByGlobalT(src, conv)
	dstLocals := make([][]T, n)
	lay := Layout{SrcBase: 0, DstBase: m}

	var wg sync.WaitGroup
	var mu sync.Mutex
	const rounds = 4
	body := func(c *comm.Comm) {
		defer wg.Done()
		var sl, dl []T
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]T, dst.LocalCount(c.Rank()-m))
		}
		// Several rounds over one session accumulate enough traffic to
		// flap the link repeatedly. Distinct base tags per round keep
		// back-to-back budgeted transfers separated (see TransferOpts).
		for round := 0; round < rounds; round++ {
			// ZeroCopyLocal stays on: every destination here is remote, so
			// the fast path must decline and copy — part of the contract.
			opts := TransferOpts{MaxBytesInFlight: budget, ZeroCopyLocal: true}
			if err := ExchangeWithT(c, s, lay, sl, dl, round*8, opts); err != nil {
				t.Errorf("rank %d round %d: %v", c.Rank(), round, err)
				return
			}
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			mu.Unlock()
		}
	}
	wg.Add(m + n)
	for r := 0; r < m; r++ {
		go body(csA[r])
	}
	for r := m; r < m+n; r++ {
		go body(csB[r])
	}
	wg.Wait()
	verifyT(t, dst, dstLocals, conv)
	return dstLocals
}

// TestWirePathVectoredMatchesLegacyOverTCP: every element kind, budgeted
// and unbudgeted, vectored vs copying, over flapping TCP sessions.
func TestWirePathVectoredMatchesLegacyOverTCP(t *testing.T) {
	for _, budget := range []int{0, 64} {
		name := map[int]string{0: "unbudgeted", 64: "budgeted"}[budget]
		t.Run("float64/"+name, func(t *testing.T) {
			conv := func(v float64) float64 { return v }
			vec := runWireExchangeT(t, conv, budget, false)
			leg := runWireExchangeT(t, conv, budget, true)
			sameLocals(t, leg, vec)
		})
		t.Run("float32/"+name, func(t *testing.T) {
			conv := func(v float64) float32 { return float32(v) }
			vec := runWireExchangeT(t, conv, budget, false)
			leg := runWireExchangeT(t, conv, budget, true)
			sameLocals(t, leg, vec)
		})
		t.Run("int64/"+name, func(t *testing.T) {
			conv := func(v float64) int64 { return int64(v) }
			vec := runWireExchangeT(t, conv, budget, false)
			leg := runWireExchangeT(t, conv, budget, true)
			sameLocals(t, leg, vec)
		})
		t.Run("int32/"+name, func(t *testing.T) {
			conv := func(v float64) int32 { return int32(v) }
			vec := runWireExchangeT(t, conv, budget, false)
			leg := runWireExchangeT(t, conv, budget, true)
			sameLocals(t, leg, vec)
		})
		t.Run("complex128/"+name, func(t *testing.T) {
			conv := func(v float64) complex128 { return complex(v, -v) }
			vec := runWireExchangeT(t, conv, budget, false)
			leg := runWireExchangeT(t, conv, budget, true)
			sameLocals(t, leg, vec)
		})
	}
}

// TestWirePathFencedOverTCP: the epoch-fenced protocol rides the
// vectored path over flapping links and matches the legacy path
// bit-identically, with nobody marked down.
func TestWirePathFencedOverTCP(t *testing.T) {
	runFenced := func(t *testing.T, plain bool) [][]float64 {
		t.Helper()
		src := tpl(t, []int{24}, dad.BlockAxis(2))
		dst := tpl(t, []int{24}, dad.CyclicAxis(3))
		s, err := schedule.Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		const m, n = 2, 3
		cli, srv := flappingSessionPair(t, 5)
		if plain {
			cli, srv = plainConn{cli}, plainConn{srv}
		}
		total := m + n
		wa := comm.NewWorld(total)
		wb := comm.NewWorld(total)
		var srcRanks, dstRanks, all []int
		for r := 0; r < total; r++ {
			all = append(all, r)
			if r < m {
				srcRanks = append(srcRanks, r)
			} else {
				dstRanks = append(dstRanks, r)
			}
		}
		pa := wa.ConnectPeer(cli, dstRanks)
		pb := wb.ConnectPeer(srv, srcRanks)
		t.Cleanup(func() { pa.Close(); pb.Close(); cli.Close(); srv.Close() })
		csA := wa.SharedGroup(1, all)
		csB := wb.SharedGroup(1, all)
		memA := core.NewMembership(total)
		memB := core.NewMembership(total)

		srcLocals := fillByGlobal(src)
		dstLocals := make([][]float64, n)
		lay := Layout{SrcBase: 0, DstBase: m}
		var wg sync.WaitGroup
		var mu sync.Mutex
		body := func(c *comm.Comm, mem *core.Membership) {
			defer wg.Done()
			var sl, dl []float64
			if c.Rank() < m {
				sl = srcLocals[c.Rank()]
			} else {
				dl = make([]float64, dst.LocalCount(c.Rank()-m))
			}
			fo := FenceOpts{Membership: mem, Policy: FailStrict, PollInterval: time.Millisecond}
			out, err := ExchangeFenced(c, s, lay, sl, dl, 0, fo)
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
			} else if len(out.Down) != 0 {
				t.Errorf("rank %d: flaps surfaced as deaths: %v", c.Rank(), out.Down)
			}
			if dl != nil {
				mu.Lock()
				dstLocals[c.Rank()-m] = dl
				mu.Unlock()
			}
		}
		wg.Add(total)
		for r := 0; r < m; r++ {
			go body(csA[r], memA)
		}
		for r := m; r < total; r++ {
			go body(csB[r], memB)
		}
		wg.Wait()
		verify(t, dst, dstLocals)
		return dstLocals
	}
	vec := runFenced(t, false)
	leg := runFenced(t, true)
	for r := range vec {
		if !bytes.Equal(bytesOf(vec[r]), bytesOf(leg[r])) {
			t.Errorf("rank %d: fenced vectored result differs bitwise from legacy", r)
		}
	}
}

// TestWirePathPoolBalancedAfterSessionExchange: after a vectored
// exchange over a flapping session finishes and the sessions close,
// every borrowed payload is back in the pool — the end-to-end leak
// check for the ownership handoff chain engine → comm → session.
func TestWirePathPoolBalancedAfterSessionExchange(t *testing.T) {
	baseline := bufpool.Outstanding()
	src := tpl(t, []int{24}, dad.BlockAxis(2))
	dst := tpl(t, []int{24}, dad.CyclicAxis(3))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	const m, n = 2, 3
	cli, srv := flappingSessionPair(t, 5)
	total := m + n
	wa := comm.NewWorld(total)
	wb := comm.NewWorld(total)
	var srcRanks, dstRanks, all []int
	for r := 0; r < total; r++ {
		all = append(all, r)
		if r < m {
			srcRanks = append(srcRanks, r)
		} else {
			dstRanks = append(dstRanks, r)
		}
	}
	pa := wa.ConnectPeer(cli, dstRanks)
	pb := wb.ConnectPeer(srv, srcRanks)
	csA := wa.SharedGroup(1, all)
	csB := wb.SharedGroup(1, all)

	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, n)
	lay := Layout{SrcBase: 0, DstBase: m}
	var wg sync.WaitGroup
	var mu sync.Mutex
	body := func(c *comm.Comm) {
		defer wg.Done()
		var sl, dl []float64
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		for round := 0; round < 3; round++ {
			if err := ExchangeWithT(c, s, lay, sl, dl, round*8, TransferOpts{}); err != nil {
				t.Errorf("rank %d round %d: %v", c.Rank(), round, err)
				return
			}
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			mu.Unlock()
		}
	}
	wg.Add(total)
	for r := 0; r < m; r++ {
		go body(csA[r])
	}
	for r := m; r < total; r++ {
		go body(csB[r])
	}
	wg.Wait()
	verify(t, dst, dstLocals)

	// Wind everything down: acks are asynchronous, so the pool drains on
	// session close at the latest.
	pa.Close()
	pb.Close()
	cli.Close()
	srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if d := bufpool.Outstanding() - baseline; d <= 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("bufpool outstanding: %+d vs baseline after teardown", bufpool.Outstanding()-baseline)
		}
		time.Sleep(time.Millisecond)
	}
}
