package redist

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/schedule"
)

// runReconfigure executes one migration over nGroup group ranks hosting
// both cohorts at Layout{} (cohort rank == group rank), with deadAfterPrepare
// marked down after the prepare fence (a death inside the resize window).
func runReconfigure(t *testing.T, mem *core.Membership, rz *core.Resize,
	oldT, newT *dad.Template, nGroup int, deadAfterPrepare []int,
	opts func(*FenceOpts)) ([][]float64, []*Outcome, []error) {
	t.Helper()
	dead := map[int]bool{}
	for _, g := range deadAfterPrepare {
		mem.MarkDown(g)
		dead[g] = true
	}
	srcLocals := fillByGlobal(oldT)
	dstLocals := make([][]float64, newT.NumProcs())
	outs := make([]*Outcome, nGroup)
	errs := make([]error, nGroup)
	var mu sync.Mutex
	comm.Run(nGroup, func(c *comm.Comm) {
		if dead[c.Rank()] {
			return
		}
		fo := FenceOpts{Membership: mem, Policy: FailStrict, PollInterval: time.Millisecond}
		if opts != nil {
			opts(&fo)
		}
		var sl, dl []float64
		if c.Rank() < oldT.NumProcs() {
			sl = srcLocals[c.Rank()]
		}
		if c.Rank() < newT.NumProcs() {
			dl = make([]float64, newT.LocalCount(c.Rank()))
		}
		out, err := ReconfigureFenced(c, rz, oldT, newT, Layout{}, sl, dl, 0, fo)
		mu.Lock()
		if dl != nil {
			dstLocals[c.Rank()] = dl
		}
		outs[c.Rank()] = out
		errs[c.Rank()] = err
		mu.Unlock()
	})
	return dstLocals, outs, errs
}

func TestReconfigureGrowBitIdentical(t *testing.T) {
	oldT := tpl(t, []int{24}, dad.BlockAxis(3))
	mem := core.NewMembership(3)
	rz, err := mem.ProposeResize(5)
	if err != nil {
		t.Fatal(err)
	}
	newT, err := dad.Reblock(oldT, 5)
	if err != nil {
		t.Fatal(err)
	}
	cache := schedule.NewCache()
	got, outs, errs := runReconfigure(t, mem, rz, oldT, newT, 5, nil,
		func(fo *FenceOpts) { fo.Cache = cache })
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if outs[r].Epoch != rz.PrepareEpoch() {
			t.Errorf("rank %d entered at epoch %d, want prepare epoch %d", r, outs[r].Epoch, rz.PrepareEpoch())
		}
		if !outs[r].Validity.AllValid() {
			t.Errorf("rank %d: clean migration invalidated elements", r)
		}
	}
	// The migrated data is bit-identical to a fresh distribution.
	verify(t, newT, got)
	if rz.Disturbed() {
		t.Fatal("clean window reported disturbed")
	}
	dropped, err := CommitReconfigure(rz, cache, oldT)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("commit dropped %d cache entries, want 1 (the migration plan)", dropped)
	}
	if mem.Width() != 5 {
		t.Fatalf("committed width %d, want 5", mem.Width())
	}
}

func TestReconfigureShrinkBitIdentical(t *testing.T) {
	oldT := tpl(t, []int{24}, dad.BlockAxis(4))
	mem := core.NewMembership(4)
	rz, err := mem.ProposeResize(2)
	if err != nil {
		t.Fatal(err)
	}
	newT, err := dad.Reblock(oldT, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, outs, errs := runReconfigure(t, mem, rz, oldT, newT, 4, nil, nil)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if outs[r].Epoch != rz.PrepareEpoch() {
			t.Errorf("rank %d entered at epoch %d, want %d", r, outs[r].Epoch, rz.PrepareEpoch())
		}
	}
	verify(t, newT, got)
	if _, err := CommitReconfigure(rz, nil); err != nil {
		t.Fatal(err)
	}
	if mem.Width() != 2 || mem.Size() != 4 {
		t.Fatalf("after shrink commit: width %d size %d, want 2/4", mem.Width(), mem.Size())
	}
}

func TestReconfigureDeathMidWindow(t *testing.T) {
	// A rank dies after prepare: the live epoch moves past the prepare
	// fence, strict migrations touching the victim fail typed, the window
	// reports disturbed, and the rollback path restores the old width.
	oldT := tpl(t, []int{24}, dad.BlockAxis(3))
	mem := core.NewMembership(3)
	rz, err := mem.ProposeResize(4)
	if err != nil {
		t.Fatal(err)
	}
	newT, err := dad.Reblock(oldT, 4)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 1
	_, _, errs := runReconfigure(t, mem, rz, oldT, newT, 4, []int{victim}, nil)
	sawTyped := false
	for _, err := range errs {
		var down *core.ErrRankDown
		if errors.As(err, &down) {
			if down.Rank != victim {
				t.Errorf("ErrRankDown.Rank = %d, want %d", down.Rank, victim)
			}
			sawTyped = true
		}
	}
	if !sawTyped {
		t.Fatal("no rank surfaced *core.ErrRankDown for the mid-window death")
	}
	if !rz.Disturbed() {
		t.Fatal("mid-window death not reported by Disturbed")
	}
	cache := schedule.NewCache()
	if _, err := cache.Get(oldT, newT); err != nil {
		t.Fatal(err)
	}
	dropped, err := AbortReconfigure(rz, cache, newT)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("abort dropped %d cache entries, want 1", dropped)
	}
	if mem.Width() != 3 {
		t.Fatalf("abort changed width to %d", mem.Width())
	}
	// Re-proposing a cohort that would include the dead rank is rejected
	// (cohorts are rank prefixes and mark-down is permanent); a width
	// below the victim still works.
	var down *core.ErrRankDown
	if _, err := mem.ProposeResize(4); !errors.As(err, &down) || down.Rank != victim {
		t.Fatalf("re-propose over dead rank: err = %v, want *core.ErrRankDown", err)
	}
	if _, err := mem.ProposeResize(victim); err != nil {
		t.Fatalf("re-propose excluding dead rank: %v", err)
	}
}

func TestReconfigureRedistributeCompletesOnSurvivors(t *testing.T) {
	// Under FailRedistribute the migration completes on the survivors and
	// records the losses instead of aborting; the caller may still commit.
	oldT := tpl(t, []int{24}, dad.BlockAxis(3))
	mem := core.NewMembership(3)
	rz, err := mem.ProposeResize(4)
	if err != nil {
		t.Fatal(err)
	}
	newT, err := dad.Reblock(oldT, 4)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 2
	got, outs, errs := runReconfigure(t, mem, rz, oldT, newT, 4, []int{victim},
		func(fo *FenceOpts) { fo.Policy = FailRedistribute })
	for r, err := range errs {
		if r == victim {
			continue
		}
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Elements whose old owner or new owner is the victim are lost or
	// undeliverable; everything else must land bit-identically.
	forEachIndex(newT.Dims(), func(idx []int) {
		nr := newT.OwnerOf(idx)
		if nr == victim {
			return
		}
		off := newT.LocalOffset(nr, idx)
		if oldT.OwnerOf(idx) == victim {
			if outs[nr].Validity.Valid(off) {
				t.Errorf("index %v: element from dead source marked valid", idx)
			}
			return
		}
		if !outs[nr].Validity.Valid(off) {
			t.Errorf("index %v: delivered element marked invalid", idx)
		}
		if got[nr][off] != fingerprint(idx) {
			t.Errorf("index %v: got %v, want %v", idx, got[nr][off], fingerprint(idx))
		}
	})
	if !rz.Disturbed() {
		t.Fatal("death not reported by Disturbed")
	}
}

func TestReconfigureValidation(t *testing.T) {
	oldT := tpl(t, []int{12}, dad.BlockAxis(2))
	newT := tpl(t, []int{12}, dad.BlockAxis(3))
	mem := core.NewMembership(2)
	rz, err := mem.ProposeResize(3)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(3)
	c := w.Comms()[0]
	fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond}
	var rcErr *ReconfigureError

	if _, err := ReconfigureFenced(c, nil, oldT, newT, Layout{}, nil, nil, 0, fo); !errors.As(err, &rcErr) {
		t.Fatalf("nil handle: err = %v, want *ReconfigureError", err)
	}
	// Template widths must match the resize handle.
	if _, err := ReconfigureFenced(c, rz, newT, newT, Layout{}, nil, nil, 0, fo); !errors.As(err, &rcErr) {
		t.Fatalf("old width mismatch: err = %v", err)
	}
	if _, err := ReconfigureFenced(c, rz, oldT, oldT, Layout{}, nil, nil, 0, fo); !errors.As(err, &rcErr) {
		t.Fatalf("new width mismatch: err = %v", err)
	}
	// The group must host both cohorts.
	small := comm.NewWorld(2).Comms()[0]
	if _, err := ReconfigureFenced(small, rz, oldT, newT, Layout{}, nil, nil, 0, fo); !errors.As(err, &rcErr) {
		t.Fatalf("undersized group: err = %v", err)
	}
	if err := rz.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureSharedPlanAcrossArrays(t *testing.T) {
	// Several arrays aligned to the same template pair migrate on one
	// cached plan: the cache ends the resize with exactly one entry for
	// the pair, dropped wholesale at commit.
	oldT := tpl(t, []int{18}, dad.BlockAxis(3))
	mem := core.NewMembership(3)
	rz, err := mem.ProposeResize(2)
	if err != nil {
		t.Fatal(err)
	}
	newT, err := dad.Reblock(oldT, 2)
	if err != nil {
		t.Fatal(err)
	}
	cache := schedule.NewCache()
	srcLocals := fillByGlobal(oldT)
	dstA := make([][]float64, 2)
	dstB := make([][]float64, 2)
	comm.Run(3, func(c *comm.Comm) {
		fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond, Cache: cache}
		var sl []float64
		if c.Rank() < 3 {
			sl = srcLocals[c.Rank()]
		}
		var da, db []float64
		if c.Rank() < 2 {
			da = make([]float64, newT.LocalCount(c.Rank()))
			db = make([]float64, newT.LocalCount(c.Rank()))
		}
		if _, err := ReconfigureFenced(c, rz, oldT, newT, Layout{}, sl, da, 0, fo); err != nil {
			t.Errorf("rank %d array A: %v", c.Rank(), err)
		}
		if _, err := ReconfigureFenced(c, rz, oldT, newT, Layout{}, sl, db, 100, fo); err != nil {
			t.Errorf("rank %d array B: %v", c.Rank(), err)
		}
		if c.Rank() < 2 {
			dstA[c.Rank()] = da
			dstB[c.Rank()] = db
		}
	})
	verify(t, newT, dstA)
	verify(t, newT, dstB)
	dropped, err := CommitReconfigure(rz, cache, oldT)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("commit dropped %d entries, want 1 shared plan", dropped)
	}
}
