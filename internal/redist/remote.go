// Remote payload codecs: what lets a redistribution span two comm.Worlds
// coupled by comm.ConnectPeer. The transfer engine's messages are plain
// in-process structs; when a destination rank lives across a connection,
// comm's remote path serializes them with the codecs registered here and
// rebuilds them — pool accounting included — on the far side.
//
// Remote payload tags used across the module (the registry is
// process-global, so tags must be unique and identical on both peers):
//
//	0 — comm built-in generic (wire.PutValue types and int)
//	1 — redist *xferMsg (this file)
//	2 — redist linRequest (this file)
//	3 — core heartbeatPing (internal/core)
package redist

import (
	"fmt"

	"mxn/internal/bufpool"
	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/wire"
)

func init() {
	comm.RegisterRemotePayload(1, comm.RemoteCodec{Encode: encodeXferMsg, Decode: decodeXferMsg})
	comm.RegisterRemotePayload(2, comm.RemoteCodec{Encode: encodeLinRequest, Decode: decodeLinRequest})
}

// encodeXferMsg serializes a transfer message and retires it: comm.Send
// transfers ownership to the receiver, and for a remote destination the
// wire is the receiver — recycling here balances the newMsg accounting
// exactly as the far side's decode re-opens it.
//
// The element bytes are the final field so that, on a borrow-mode
// encoder (an OwnedSender connection), they can leave the process as a
// borrowed payload segment instead of being copied into the frame
// encoding: ownership of the pooled data buffer passes to the
// connection, which returns it to the pool once the peer has
// acknowledged the frame. The wire bytes are identical either way.
func encodeXferMsg(e *wire.Encoder, v any) bool {
	m, ok := v.(*xferMsg)
	if !ok {
		return false
	}
	e.PutUint64(m.epoch)
	e.PutByte(byte(m.kind))
	e.PutUvarint(uint64(m.elems))
	e.PutBool(m.ack)
	putLinearSet(e, m.have)
	if e.Borrowing() && m.done == nil && len(m.data) > 0 {
		// Lend the pooled payload to the connection instead of copying:
		// detach it before recycle (which must not Put it) and close the
		// in-flight accounting here, exactly where the copying path's
		// recycle would.
		data := m.data
		m.data = nil
		bytesInFlight.Add(-int64(len(data)))
		recycle(m)
		e.PutBytesRef(data)
		return true
	}
	// Copying path: plain encoders, and the defensive case of a borrowed
	// source view (m.done != nil) that raced its way to a remote peer —
	// the view's bytes are copied so the caller's slice is never lent
	// across the process boundary.
	e.PutBytes(m.data)
	recycle(m)
	return true
}

func decodeXferMsg(d *wire.Decoder) (any, error) {
	m := getMsg()
	m.epoch = d.Uint64()
	m.kind = dad.ElemKind(d.Byte())
	m.elems = int(d.Uvarint())
	m.ack = d.Bool()
	m.have = getLinearSet(d)
	// Borrow the payload view from the frame buffer — the copy below is
	// the only one on the receive path (Decoder.Bytes would add a second).
	raw := d.BorrowBytes()
	if d.Err() != nil {
		// m.data is still nil here, so recycle is pure pool bookkeeping.
		recycle(m)
		return nil, fmt.Errorf("redist: corrupt remote transfer message: %w", d.Err())
	}
	// Copy the payload out of the frame buffer into a pooled buffer, so
	// the receiver's recycle returns a proper size-classed buffer and the
	// in-flight accounting opened here is closed there.
	m.data = bufpool.Get(len(raw))
	copy(m.data, raw)
	addInFlight(len(m.data))
	return m, nil
}

func encodeLinRequest(e *wire.Encoder, v any) bool {
	req, ok := v.(linRequest)
	if !ok {
		return false
	}
	e.PutUvarint(uint64(req.dstRank))
	e.PutUint64(req.epoch)
	putLinearSet(e, req.need)
	return true
}

func decodeLinRequest(d *wire.Decoder) (any, error) {
	var req linRequest
	req.dstRank = int(d.Uvarint())
	req.epoch = d.Uint64()
	req.need = getLinearSet(d)
	if d.Err() != nil {
		return nil, fmt.Errorf("redist: corrupt remote linear request: %w", d.Err())
	}
	return req, nil
}

func putLinearSet(e *wire.Encoder, s linear.Set) {
	e.PutUvarint(uint64(len(s)))
	for _, iv := range s {
		e.PutInt64(int64(iv.Lo))
		e.PutInt64(int64(iv.Hi))
	}
}

func getLinearSet(d *wire.Decoder) linear.Set {
	n := int(d.Uvarint())
	if n <= 0 || d.Err() != nil {
		return nil
	}
	// Grow by append rather than pre-sizing with the untrusted length
	// prefix: each appended interval consumed 16 real bytes, so a hostile
	// n poisons the decoder instead of forcing a huge allocation.
	var s linear.Set
	for i := 0; i < n && d.Err() == nil; i++ {
		lo := int(d.Int64())
		hi := int(d.Int64())
		s = append(s, linear.Interval{Lo: lo, Hi: hi})
	}
	if d.Err() != nil {
		return nil
	}
	return s
}
