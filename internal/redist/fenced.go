// Epoch-fenced, failure-aware transfer executors.
//
// Exchange and LinearExchange assume both cohorts stay alive: a crashed
// source rank leaves its destinations blocked in Recv forever. The fenced
// variants below run the same engine against a core.Membership view:
// messages are stamped with the membership epoch in force when the
// transfer began, receivers reject stale-epoch leftovers of pre-failure
// attempts, and a rank death observed mid-transfer either aborts the
// transfer with a typed *core.ErrRankDown (FailStrict) or re-plans it
// against the surviving ranks (FailRedistribute), completing on the live
// pairs and recording the lost elements in a dad.Validity bitmap.
//
// The fenced functions are wrappers: they build a fenceRun and call the
// same exchangeT/linearExchangeT the unfenced functions use, which run
// the single transfer loop in engine.go.
package redist

import (
	"fmt"
	"sort"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

var (
	mReplans          = obs.Default().Counter("redist.replans")
	mReplanNS         = obs.Default().Histogram("redist.replan_ns")
	mStaleEpoch       = obs.Default().Counter("redist.stale_epoch_rejected")
	mStaleLocal       = obs.Default().Counter("redist.stale_local_epoch")
	mRankdownAborts   = obs.Default().Counter("redist.rankdown_aborts")
	mSendsSkippedDead = obs.Default().Counter("redist.sends_skipped_dead")
	mElemsInvalidated = obs.Default().Counter("redist.elems_invalidated")
)

// StaleLocalEpochError reports the inverse of a stale-epoch discard:
// a peer's message carried a NEWER membership epoch than this rank
// entered the transfer at, meaning this rank's plan is the stale one.
// Consuming such a message would corrupt data silently whenever element
// counts happen to match, so the transfer aborts (after draining) and
// the caller should re-enter it at the current epoch — as should the
// peer cohort, which will see this rank's own traffic as stale.
type StaleLocalEpochError struct {
	Transfer string // "exchange" or "linear"
	Rank     int    // local cohort rank that found itself stale
	Peer     int    // peer cohort rank whose message carried the newer epoch
	Local    uint64 // this rank's entry epoch
	Remote   uint64 // the epoch stamped on the peer's message
}

func (e *StaleLocalEpochError) Error() string {
	return fmt.Sprintf("redist: %s transfer: rank %d entered at epoch %d but peer rank %d is at epoch %d; re-enter at the current epoch",
		e.Transfer, e.Rank, e.Local, e.Peer, e.Remote)
}

// FailPolicy selects what a fenced transfer does when a rank it depends on
// is (or becomes) dead.
type FailPolicy int

const (
	// FailStrict aborts the transfer: the caller gets *core.ErrRankDown
	// after the destination has drained whatever expected messages can
	// still arrive, so the tag namespace stays clean for a retry.
	FailStrict FailPolicy = iota
	// FailRedistribute re-plans: the transfer completes on the
	// surviving pairs, the schedule cache entry (if any) is
	// invalidated, and elements whose only source died are recorded in
	// the destination's validity bitmap instead of failing the whole
	// cohort.
	FailRedistribute
)

// FenceOpts configures a fenced transfer.
type FenceOpts struct {
	// Membership is the shared liveness view. Ranks are communicator
	// *group* ranks (the same space Layout maps cohort ranks into), so
	// one membership covers both cohorts. Required.
	Membership *core.Membership
	// Policy selects abort-vs-replan. Default FailStrict.
	Policy FailPolicy
	// PollInterval is the receive-poll granularity used instead of a
	// blocking Recv, so membership changes are noticed while waiting.
	// Default 2ms.
	PollInterval time.Duration
	// SuspectAfter, when positive, is receiver-side failure detection:
	// a peer whose expected message has not arrived after this long is
	// marked down in Membership (and the policy applied), even with no
	// heartbeat detector running. Zero disables suspicion: only
	// Membership declares deaths.
	SuspectAfter time.Duration
	// Cache, when set, has its (Src, Dst) entry invalidated whenever a
	// death forces a re-plan, so later transfers rebuild from current
	// templates. The cache deduplicates in-flight builds, so when every
	// survivor hits the invalidated entry in the same epoch the planner
	// runs once, not once per rank — and for regular template pairs the
	// rebuild takes the closed-form fast path, keeping the re-plan cost
	// of the same order as a single transfer step.
	Cache *schedule.Cache
	// Desc, when set, receives the destination validity bitmap via
	// SetValidity(dstRank, ...) whenever a re-planned transfer loses
	// elements — the "partial data marked on the destination DAD" hook.
	Desc *dad.Descriptor
	// MaxBytesInFlight, when positive, runs the transfer through the
	// memory-bounded chunked protocol (see TransferOpts and budget.go).
	// Rounds carry the entry epoch on every chunk, and the failure
	// policies apply per chunk exactly as they apply per message.
	// Back-to-back budgeted transfers between the same ranks must use
	// distinct base tags (see TransferOpts.MaxBytesInFlight).
	MaxBytesInFlight int
}

func (o FenceOpts) withDefaults() FenceOpts {
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Millisecond
	}
	return o
}

// Outcome reports what a fenced transfer did beyond moving data.
type Outcome struct {
	// Epoch is the membership epoch the transfer was fenced at (sampled
	// on entry).
	Epoch uint64
	// Down lists the group ranks observed dead during the transfer
	// (sorted). Empty on a fully clean transfer.
	Down []int
	// Validity is the destination-side bitmap over dstLocal; nil on
	// ranks that are not destinations. AllValid() reports a transfer
	// that lost nothing.
	Validity *dad.Validity
	// Replanned is the restricted schedule the survivors executed, set
	// only when a FailRedistribute re-plan happened (schedule-driven
	// transfers only).
	Replanned *schedule.Schedule
}

// ExchangeFencedT is ExchangeT under a liveness view: identical protocol
// and tag usage, but sends are epoch-stamped and skip dead destinations,
// and a destination that observes a source death applies opts.Policy
// instead of blocking forever. See FenceOpts and Outcome for the knobs and
// the report.
func ExchangeFencedT[T Elem](c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []T,
	baseTag int, opts FenceOpts) (*Outcome, error) {

	// A schedule-driven sender aborts on a dead destination under
	// FailStrict: the destination's missing message would wedge the
	// collective protocol.
	f := newFenceRun(opts, true)
	err := exchangeT(c, s, lay, srcLocal, dstLocal, baseTag, f, opts.MaxBytesInFlight, false)
	sort.Ints(f.out.Down)
	return f.out, err
}

// ExchangeFenced is ExchangeFencedT for float64, the historical default.
func ExchangeFenced(c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []float64,
	baseTag int, opts FenceOpts) (*Outcome, error) {
	return ExchangeFencedT[float64](c, s, lay, srcLocal, dstLocal, baseTag, opts)
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// LinearExchangeFencedT is LinearExchangeT under a liveness view. The
// receiver-driven protocol is unchanged (requests on baseTag, replies on
// baseTag+1), but requests and replies carry the sender's entry epoch,
// stale-epoch traffic is discarded, sources poll for requests only from
// destinations that are still alive, and a destination losing a source
// applies opts.Policy — under FailRedistribute the positions that source
// owned of this destination's needs are invalidated in the validity
// bitmap and the transfer completes on the surviving sources.
func LinearExchangeFencedT[T Elem](c *comm.Comm, srcLin, dstLin linear.LinearizerT[T], lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []T, baseTag int, opts FenceOpts) (*Outcome, error) {

	// A receiver-driven source owes the destinations nothing it was not
	// asked for: replies to dead requesters are skipped, never aborted on.
	f := newFenceRun(opts, false)
	err := linearExchangeT(c, srcLin, dstLin, lay, nSrc, nDst, srcLocal, dstLocal, baseTag, f, opts.MaxBytesInFlight)
	sort.Ints(f.out.Down)
	return f.out, err
}

// LinearExchangeFenced is LinearExchangeFencedT for float64, the
// historical default.
func LinearExchangeFenced(c *comm.Comm, srcLin, dstLin linear.Linearizer, lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []float64, baseTag int, opts FenceOpts) (*Outcome, error) {
	return LinearExchangeFencedT[float64](c, srcLin, dstLin, lay, nSrc, nDst, srcLocal, dstLocal, baseTag, opts)
}
