// Epoch-fenced, failure-aware transfer executors.
//
// Exchange and LinearExchange assume both cohorts stay alive: a crashed
// source rank leaves its destinations blocked in Recv forever. The fenced
// variants below run the same protocols against a core.Membership view:
// messages are stamped with the membership epoch in force when the
// transfer began, receivers reject stale-epoch leftovers of pre-failure
// attempts, and a rank death observed mid-transfer either aborts the
// transfer with a typed *core.ErrRankDown (FailStrict) or re-plans it
// against the surviving ranks (FailRedistribute), completing on the live
// pairs and recording the lost elements in a dad.Validity bitmap.
package redist

import (
	"sort"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

var (
	mReplans          = obs.Default().Counter("redist.replans")
	mReplanNS         = obs.Default().Histogram("redist.replan_ns")
	mStaleEpoch       = obs.Default().Counter("redist.stale_epoch_rejected")
	mRankdownAborts   = obs.Default().Counter("redist.rankdown_aborts")
	mSendsSkippedDead = obs.Default().Counter("redist.sends_skipped_dead")
	mElemsInvalidated = obs.Default().Counter("redist.elems_invalidated")
)

// FailPolicy selects what a fenced transfer does when a rank it depends on
// is (or becomes) dead.
type FailPolicy int

const (
	// FailStrict aborts the transfer: the caller gets *core.ErrRankDown
	// after the destination has drained whatever expected messages can
	// still arrive, so the tag namespace stays clean for a retry.
	FailStrict FailPolicy = iota
	// FailRedistribute re-plans: the transfer completes on the
	// surviving pairs, the schedule cache entry (if any) is
	// invalidated, and elements whose only source died are recorded in
	// the destination's validity bitmap instead of failing the whole
	// cohort.
	FailRedistribute
)

// FenceOpts configures a fenced transfer.
type FenceOpts struct {
	// Membership is the shared liveness view. Ranks are communicator
	// *group* ranks (the same space Layout maps cohort ranks into), so
	// one membership covers both cohorts. Required.
	Membership *core.Membership
	// Policy selects abort-vs-replan. Default FailStrict.
	Policy FailPolicy
	// PollInterval is the receive-poll granularity used instead of a
	// blocking Recv, so membership changes are noticed while waiting.
	// Default 2ms.
	PollInterval time.Duration
	// SuspectAfter, when positive, is receiver-side failure detection:
	// a peer whose expected message has not arrived after this long is
	// marked down in Membership (and the policy applied), even with no
	// heartbeat detector running. Zero disables suspicion: only
	// Membership declares deaths.
	SuspectAfter time.Duration
	// Cache, when set, has its (Src, Dst) entry invalidated whenever a
	// death forces a re-plan, so later transfers rebuild from current
	// templates.
	Cache *schedule.Cache
	// Desc, when set, receives the destination validity bitmap via
	// SetValidity(dstRank, ...) whenever a re-planned transfer loses
	// elements — the "partial data marked on the destination DAD" hook.
	Desc *dad.Descriptor
}

func (o FenceOpts) withDefaults() FenceOpts {
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Millisecond
	}
	return o
}

// Outcome reports what a fenced transfer did beyond moving data.
type Outcome struct {
	// Epoch is the membership epoch the transfer was fenced at (sampled
	// on entry).
	Epoch uint64
	// Down lists the group ranks observed dead during the transfer
	// (sorted). Empty on a fully clean transfer.
	Down []int
	// Validity is the destination-side bitmap over dstLocal; nil on
	// ranks that are not destinations. AllValid() reports a transfer
	// that lost nothing.
	Validity *dad.Validity
	// Replanned is the restricted schedule the survivors executed, set
	// only when a FailRedistribute re-plan happened (schedule-driven
	// transfers only).
	Replanned *schedule.Schedule
}

// fencedMsg is the epoch-stamped payload of a fenced schedule-driven
// transfer. Epoch 0 would mean "unstamped"; fenced senders always stamp
// the real epoch (≥ 1).
type fencedMsg struct {
	epoch uint64
	data  []float64
}

// ExchangeFenced is Exchange under a liveness view: identical protocol and
// tag usage, but sends are epoch-stamped and skip dead destinations, and a
// destination that observes a source death applies opts.Policy instead of
// blocking forever. See FenceOpts and Outcome for the knobs and the
// report.
func ExchangeFenced(c *comm.Comm, s *schedule.Schedule, lay Layout, srcLocal, dstLocal []float64,
	baseTag int, opts FenceOpts) (*Outcome, error) {

	opts = opts.withDefaults()
	m := opts.Membership
	entryEpoch := m.Epoch()
	out := &Outcome{Epoch: entryEpoch}
	defer func() { sort.Ints(out.Down) }()
	me := c.Rank()
	srcRank := me - lay.SrcBase
	dstRank := me - lay.DstBase
	isSrc := srcRank >= 0 && srcRank < s.Src.NumProcs()
	isDst := dstRank >= 0 && dstRank < s.Dst.NumProcs()

	downSeen := map[int]bool{}
	noteDown := func(group int) {
		if !downSeen[group] {
			downSeen[group] = true
			out.Down = append(out.Down, group)
		}
	}

	if isSrc {
		for _, p := range s.OutgoingFor(srcRank) {
			dg := lay.DstBase + p.DstRank
			if !m.IsAlive(dg) {
				noteDown(dg)
				mSendsSkippedDead.Inc()
				if opts.Policy == FailStrict {
					mRankdownAborts.Inc()
					return out, &core.ErrRankDown{Rank: dg, Epoch: m.Epoch()}
				}
				continue
			}
			buf := make([]float64, p.Elems)
			start := time.Now()
			schedule.Pack(p, srcLocal, buf)
			mPackNS.ObserveSince(start)
			c.Send(dg, baseTag, fencedMsg{epoch: entryEpoch, data: buf})
			mMsgsSent.Inc()
			mElemsPacked.Add(uint64(p.Elems))
		}
		mTransfers.Inc()
	}

	if isDst {
		out.Validity = dad.NewValidity(len(dstLocal))
		restricted := s // effective plan; narrowed on re-plan

		// lose applies the policy to a dead source: under
		// FailRedistribute it invalidates the elements that pair would
		// have delivered and (once) re-plans; under FailStrict it
		// returns the typed error to surface after the drain.
		lose := func(p schedule.PairPlan, sg int) error {
			noteDown(sg)
			if opts.Policy == FailStrict {
				mRankdownAborts.Inc()
				return &core.ErrRankDown{Rank: sg, Epoch: m.Epoch()}
			}
			for _, run := range p.Runs {
				out.Validity.InvalidateRange(run.DstOff, run.N)
			}
			mElemsInvalidated.Add(uint64(p.Elems))
			if out.Replanned == nil || out.Replanned == s {
				start := time.Now()
				if opts.Cache != nil {
					opts.Cache.Invalidate(s.Src, s.Dst)
				}
				restricted = schedule.Restrict(s,
					func(r int) bool { return m.IsAlive(lay.SrcBase + r) },
					func(r int) bool { return m.IsAlive(lay.DstBase + r) })
				out.Replanned = restricted
				mReplanNS.ObserveSince(start)
				mReplans.Inc()
			}
			return nil
		}

		var strictErr error
		for _, p := range s.IncomingFor(dstRank) {
			sg := lay.SrcBase + p.SrcRank
			waited := time.Duration(0)
			for {
				if strictErr == nil && !m.IsAlive(sg) {
					if err := lose(p, sg); err != nil {
						strictErr = err
					}
					break
				}
				payload, _, ok := c.RecvTimeout(sg, baseTag, opts.PollInterval)
				if !ok {
					waited += opts.PollInterval
					if opts.SuspectAfter > 0 && waited >= opts.SuspectAfter {
						m.MarkDown(sg)
					}
					if strictErr != nil && waited >= maxDur(opts.SuspectAfter, 10*opts.PollInterval) {
						// Draining after a strict abort: give up on
						// sources that stay silent.
						break
					}
					continue
				}
				em, isFenced := payload.(fencedMsg)
				if isFenced && em.epoch != 0 && em.epoch < entryEpoch {
					// Leftover of a pre-failure attempt; discard and
					// keep waiting for the current epoch's message.
					mStaleEpoch.Inc()
					continue
				}
				mMsgsRecv.Inc()
				if strictErr != nil {
					mDrained.Inc()
					break
				}
				if !isFenced || len(em.data) != p.Elems {
					mErrors.Inc()
					return out, &ElemCountError{Transfer: "exchange", DstRank: dstRank, SrcRank: p.SrcRank,
						Got: len(em.data), Want: p.Elems}
				}
				start := time.Now()
				schedule.Unpack(p, dstLocal, em.data)
				mUnpackNS.ObserveSince(start)
				mElemsUnpack.Add(uint64(p.Elems))
				break
			}
		}
		if strictErr != nil {
			mErrors.Inc()
			return out, strictErr
		}
		if opts.Desc != nil && !out.Validity.AllValid() {
			opts.Desc.SetValidity(dstRank, out.Validity)
		}
		mTransfers.Inc()
	}
	return out, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// LinearExchangeFenced is LinearExchange under a liveness view. The
// receiver-driven protocol is unchanged (requests on baseTag, replies on
// baseTag+1), but requests and replies carry the sender's entry epoch,
// stale-epoch traffic is discarded, sources poll for requests only from
// destinations that are still alive, and a destination losing a source
// applies opts.Policy — under FailRedistribute the positions that source
// owned of this destination's needs are invalidated in the validity
// bitmap and the transfer completes on the surviving sources.
func LinearExchangeFenced(c *comm.Comm, srcLin, dstLin linear.Linearizer, lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []float64, baseTag int, opts FenceOpts) (*Outcome, error) {

	opts = opts.withDefaults()
	m := opts.Membership
	entryEpoch := m.Epoch()
	out := &Outcome{Epoch: entryEpoch}
	defer func() { sort.Ints(out.Down) }()
	me := c.Rank()
	srcRank := me - lay.SrcBase
	dstRank := me - lay.DstBase
	isSrc := srcRank >= 0 && srcRank < nSrc
	isDst := dstRank >= 0 && dstRank < nDst
	reqTag, dataTag := baseTag, baseTag+1

	downSeen := map[int]bool{}
	noteDown := func(group int) {
		if !downSeen[group] {
			downSeen[group] = true
			out.Down = append(out.Down, group)
		}
	}

	// Destinations request from the sources alive at entry.
	var need linear.Set
	var requested []bool // source rank -> request sent
	if isDst {
		need = dstLin.OwnedBy(dstRank)
		requested = make([]bool, nSrc)
		for sr := 0; sr < nSrc; sr++ {
			sg := lay.SrcBase + sr
			if !m.IsAlive(sg) {
				noteDown(sg)
				mSendsSkippedDead.Inc()
				continue
			}
			c.Send(sg, reqTag, linRequest{dstRank: dstRank, need: need, epoch: entryEpoch})
			requested[sr] = true
			mLinRequests.Inc()
		}
	}

	// Sources collect one request per live destination, polling so a
	// destination that dies before requesting does not hang the source.
	if isSrc {
		owned := srcLin.OwnedBy(srcRank)
		pending := map[int]bool{}
		for d := 0; d < nDst; d++ {
			pending[lay.DstBase+d] = true
		}
		var reqs []linRequest
		waited := time.Duration(0)
		for len(pending) > 0 {
			for dg := range pending {
				if !m.IsAlive(dg) {
					noteDown(dg)
					delete(pending, dg)
				}
			}
			if len(pending) == 0 {
				break
			}
			payload, from, ok := c.RecvTimeout(comm.AnySource, reqTag, opts.PollInterval)
			if !ok {
				waited += opts.PollInterval
				if opts.SuspectAfter > 0 && waited >= opts.SuspectAfter {
					for dg := range pending {
						m.MarkDown(dg)
					}
				}
				continue
			}
			req, isReq := payload.(linRequest)
			if isReq && req.epoch != 0 && req.epoch < entryEpoch {
				mStaleEpoch.Inc()
				continue
			}
			if !isReq {
				mDrained.Inc()
				continue
			}
			delete(pending, from)
			reqs = append(reqs, req)
		}
		for _, req := range reqs {
			dg := lay.DstBase + req.dstRank
			if !m.IsAlive(dg) {
				mSendsSkippedDead.Inc()
				continue
			}
			have := owned.Intersect(req.need)
			data := make([]float64, have.Len())
			start := time.Now()
			srcLin.Pack(srcRank, srcLocal, have, data)
			mPackNS.ObserveSince(start)
			mElemsPacked.Add(uint64(len(data)))
			c.Send(dg, dataTag, linReply{have: have, data: data, epoch: entryEpoch})
			mLinReplies.Inc()
		}
		mTransfers.Inc()
	}

	// Destinations unpack one reply per source they requested from,
	// applying the policy when a source dies before replying.
	if isDst {
		out.Validity = dad.NewValidity(len(dstLocal))

		// loseSource invalidates the destination elements whose
		// positions the dead source owned: Unpack a tracking buffer of
		// ones through the lost set, then invalidate everywhere a one
		// landed — no new Linearizer surface needed.
		loseSource := func(sr int) {
			lost := srcLin.OwnedBy(sr).Intersect(need)
			if lost.Len() == 0 {
				return
			}
			track := make([]float64, len(dstLocal))
			ones := make([]float64, lost.Len())
			for i := range ones {
				ones[i] = 1
			}
			dstLin.Unpack(dstRank, track, lost, ones)
			for i, v := range track {
				if v == 1 {
					out.Validity.Invalidate(i)
				}
			}
			mElemsInvalidated.Add(uint64(lost.Len()))
			mReplans.Inc()
		}

		var strictErr error
		for sr := 0; sr < nSrc; sr++ {
			sg := lay.SrcBase + sr
			if !requested[sr] {
				// Dead at entry: its share is already lost.
				if opts.Policy == FailStrict {
					mRankdownAborts.Inc()
					strictErr = &core.ErrRankDown{Rank: sg, Epoch: m.Epoch()}
					continue
				}
				loseSource(sr)
				continue
			}
			waited := time.Duration(0)
			for {
				if strictErr == nil && !m.IsAlive(sg) {
					noteDown(sg)
					if opts.Policy == FailStrict {
						mRankdownAborts.Inc()
						strictErr = &core.ErrRankDown{Rank: sg, Epoch: m.Epoch()}
					} else {
						loseSource(sr)
					}
					break
				}
				payload, _, ok := c.RecvTimeout(sg, dataTag, opts.PollInterval)
				if !ok {
					waited += opts.PollInterval
					if opts.SuspectAfter > 0 && waited >= opts.SuspectAfter {
						m.MarkDown(sg)
					}
					if strictErr != nil && waited >= maxDur(opts.SuspectAfter, 10*opts.PollInterval) {
						break
					}
					continue
				}
				rep, isRep := payload.(linReply)
				if isRep && rep.epoch != 0 && rep.epoch < entryEpoch {
					mStaleEpoch.Inc()
					continue
				}
				mMsgsRecv.Inc()
				if strictErr != nil {
					mDrained.Inc()
					break
				}
				expect := srcLin.OwnedBy(sr).Intersect(need)
				if !isRep || !rep.have.Equal(expect) || len(rep.data) != rep.have.Len() {
					mErrors.Inc()
					return out, &ElemCountError{Transfer: "linear", DstRank: dstRank, SrcRank: sr,
						Got: len(rep.data), Want: expect.Len()}
				}
				start := time.Now()
				dstLin.Unpack(dstRank, dstLocal, rep.have, rep.data)
				mUnpackNS.ObserveSince(start)
				mElemsUnpack.Add(uint64(len(rep.data)))
				break
			}
		}
		if strictErr != nil {
			mErrors.Inc()
			return out, strictErr
		}
		if opts.Desc != nil && !out.Validity.AllValid() {
			opts.Desc.SetValidity(dstRank, out.Validity)
		}
		mTransfers.Inc()
	}
	return out, nil
}
