package redist

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

// Regression: ExecuteLocal with aliased source and destination buffers (a
// self-redistribution in place). The interleaved pack/unpack it used to do
// read source elements that an earlier pair's unpack had already
// overwritten; all pairs must be packed before any is unpacked.
func TestExecuteLocalAliasedBuffers(t *testing.T) {
	src := tpl(t, []int{16}, dad.BlockAxis(2))
	dst := tpl(t, []int{16}, dad.CyclicAxis(2))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}

	// Reference result with disjoint buffers.
	want := make([][]float64, dst.NumProcs())
	for r := range want {
		want[r] = make([]float64, dst.LocalCount(r))
	}
	ExecuteLocal(s, fillByGlobal(src), want)

	// In-place: the same slices serve as source and destination. Local
	// counts match (8 elements per rank on both sides), so this is the
	// legal aliased case.
	locals := fillByGlobal(src)
	ExecuteLocal(s, locals, locals)
	for r := range want {
		for i := range want[r] {
			if locals[r][i] != want[r][i] {
				t.Fatalf("aliased rank %d elem %d: got %v, want %v", r, i, locals[r][i], want[r][i])
			}
		}
	}
	verify(t, dst, locals)
}

// Regression: a destination that detects a bad message mid-transfer must
// still consume the rest of its expected messages, or the leftovers stay
// queued under baseTag and cross-match the next transfer reusing that tag.
// Transfer 1 is hand-played by the sources with one mis-sized message and
// one sentinel-valued message; transfer 2 runs the real protocol on the
// SAME tag and must come through intact.
func TestExchangeDrainsAfterError(t *testing.T) {
	src := tpl(t, []int{8}, dad.BlockAxis(2))
	dst := tpl(t, []int{8}, dad.CyclicAxis(2))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, 2)
	var mu sync.Mutex
	comm.Run(4, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 2}
		const tag = 0
		switch r := c.Rank(); {
		case r < 2:
			// Transfer 1, hand-played: rank 0 sends destination rank 0 a
			// message one element too long; everything else gets a
			// correct-length sentinel payload.
			for _, p := range s.OutgoingFor(r) {
				n := p.Elems
				if r == 0 && p.DstRank == 0 {
					n++
				}
				bad := newMsg[float64](0, n)
				vals := elemsOf[float64](bad.data, n)
				for i := range vals {
					vals[i] = -999
				}
				c.Send(lay.DstBase+p.DstRank, tag, bad)
			}
			// Transfer 2: the real protocol on the same tag.
			if err := Exchange(c, s, lay, srcLocals[r], nil, tag); err != nil {
				t.Errorf("source rank %d transfer 2: %v", r, err)
			}
		default:
			dl := make([]float64, dst.LocalCount(r-2))
			err := Exchange(c, s, lay, nil, dl, tag)
			if r == 2 {
				var ece *ElemCountError
				if !errors.As(err, &ece) {
					t.Errorf("dst rank 0 transfer 1: got %v, want ElemCountError", err)
				}
			} else if err != nil {
				t.Errorf("dst rank %d transfer 1: %v", r-2, err)
			}
			// Transfer 2 on the same tag must see only transfer-2 data.
			dl2 := make([]float64, dst.LocalCount(r-2))
			if err := Exchange(c, s, lay, nil, dl2, tag); err != nil {
				t.Errorf("dst rank %d transfer 2: %v", r-2, err)
			}
			mu.Lock()
			dstLocals[r-2] = dl2
			mu.Unlock()
		}
	})
	verify(t, dst, dstLocals)
}

// Regression: LinearExchange used to discard the source result of
// Recv(AnySource) and trust both arrival order and the reply's own claim
// about which positions it carries. A reply must be attributed to its
// actual sender and validated against that sender's owned∩needed
// intersection; transfer 2 on the same base tag must still work after the
// failed transfer drained its messages.
func TestLinearExchangeValidatesAndDrains(t *testing.T) {
	src := tpl(t, []int{8}, dad.BlockAxis(2))
	dst := tpl(t, []int{8}, dad.CyclicAxis(2))
	srcLin := linear.NewRowMajor(src)
	dstLin := linear.NewRowMajor(dst)
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, 2)
	var mu sync.Mutex
	comm.Run(4, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 2}
		const tag = 0
		reqTag, dataTag := tag, tag+1
		switch r := c.Rank(); {
		case r == 0:
			// Transfer 1, hand-played misbehaving source: answer
			// destination rank 0 with a reply claiming one position fewer
			// than the true intersection; answer destination rank 1
			// honestly.
			owned := srcLin.OwnedBy(0)
			for i := 0; i < 2; i++ {
				payload, _ := c.Recv(comm.AnySource, reqTag)
				req := payload.(linRequest)
				have := owned.Intersect(req.need)
				if req.dstRank == 0 {
					// Drop the last position of the last interval.
					short := append(linear.Set(nil), have...)
					short[len(short)-1].Hi--
					have = short
				}
				rep := newMsg[float64](0, have.Len())
				srcLin.Pack(0, srcLocals[0], have, elemsOf[float64](rep.data, have.Len()))
				rep.have = have
				c.Send(lay.DstBase+req.dstRank, dataTag, rep)
			}
			// Transfer 2: honest protocol on the same base tag.
			if err := LinearExchange(c, srcLin, dstLin, lay, 2, 2, srcLocals[0], nil, tag); err != nil {
				t.Errorf("source rank 0 transfer 2: %v", err)
			}
		case r == 1:
			for transfer := 0; transfer < 2; transfer++ {
				if err := LinearExchange(c, srcLin, dstLin, lay, 2, 2, srcLocals[1], nil, tag); err != nil {
					t.Errorf("source rank 1 transfer %d: %v", transfer+1, err)
				}
			}
		default:
			dl := make([]float64, dst.LocalCount(r-2))
			err := LinearExchange(c, srcLin, dstLin, lay, 2, 2, nil, dl, tag)
			if r == 2 {
				var ece *ElemCountError
				if !errors.As(err, &ece) {
					t.Errorf("dst rank 0 transfer 1: got %v, want ElemCountError", err)
				} else if ece.SrcRank != 0 && ece.SrcRank != -1 {
					t.Errorf("dst rank 0 transfer 1: blamed source rank %d", ece.SrcRank)
				}
			} else if err != nil {
				t.Errorf("dst rank %d transfer 1: %v", r-2, err)
			}
			dl2 := make([]float64, dst.LocalCount(r-2))
			if err := LinearExchange(c, srcLin, dstLin, lay, 2, 2, nil, dl2, tag); err != nil {
				t.Errorf("dst rank %d transfer 2: %v", r-2, err)
			}
			mu.Lock()
			dstLocals[r-2] = dl2
			mu.Unlock()
		}
	})
	verify(t, dst, dstLocals)
}

// Guard: the metric updates on the Exchange pack/send path are pure atomic
// operations and must not allocate. (comm.Send itself boxes its payload;
// that pre-existing cost is measured by BenchmarkExchangePackPath, not
// here.)
func TestExchangeMetricsZeroAlloc(t *testing.T) {
	src := tpl(t, []int{64}, dad.BlockAxis(2))
	dst := tpl(t, []int{64}, dad.CyclicAxis(2))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	p := s.OutgoingFor(0)[0]
	local := make([]float64, src.LocalCount(0))
	buf := make([]float64, p.Elems)
	obs.DisableTracing()
	tr := obs.Trace()
	allocs := testing.AllocsPerRun(100, func() {
		start := time.Now()
		schedule.Pack(p, local, buf)
		mPackNS.ObserveSince(start)
		tr.Span(obs.EvPack, "", 0, p.DstRank, int64(p.Elems), start)
		mMsgsSent.Inc()
		mElemsPacked.Add(uint64(p.Elems))
		mMsgElems.Observe(int64(p.Elems))
		tr.Span(obs.EvSend, "", 0, p.DstRank, int64(p.Elems), start)
	})
	if allocs != 0 {
		t.Fatalf("pack-path metrics allocate: %v allocs/op", allocs)
	}
}

// BenchmarkExchangePackPath times one instrumented pack+send iteration so
// -benchmem shows the full per-message allocation budget (message buffer +
// comm.Send boxing); the metrics themselves contribute zero, as asserted
// by TestExchangeMetricsZeroAlloc.
func BenchmarkExchangePackPath(b *testing.B) {
	out, err := dad.NewTemplate([]int{1 << 12}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		b.Fatal(err)
	}
	in, err := dad.NewTemplate([]int{1 << 12}, []dad.AxisDist{dad.CyclicAxis(2)})
	if err != nil {
		b.Fatal(err)
	}
	s, err := schedule.Build(out, in)
	if err != nil {
		b.Fatal(err)
	}
	p := s.OutgoingFor(0)[0]
	local := make([]float64, out.LocalCount(0))
	buf := make([]float64, p.Elems)
	tr := obs.Trace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		schedule.Pack(p, local, buf)
		mPackNS.ObserveSince(start)
		tr.Span(obs.EvPack, "", 0, p.DstRank, int64(p.Elems), start)
		mMsgsSent.Inc()
		mElemsPacked.Add(uint64(p.Elems))
		mMsgElems.Observe(int64(p.Elems))
	}
}
