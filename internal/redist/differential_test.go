package redist

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/schedule"
)

// Differential guarantee: with every rank alive, the fenced engine must
// produce destination buffers bit-identical to the unfenced engine — the
// epoch stamps, liveness checks and polling receives are pure overhead,
// never a semantic change. Ranks are launched in shuffled order so the
// comparison also holds under arbitrary interleavings (run under -race by
// `make race`).

// launchShuffled runs fn for every rank of an n-rank world, starting the
// goroutines in the given order.
func launchShuffled(n int, order []int, fn func(c *comm.Comm)) {
	cs := comm.NewWorld(n).Comms()
	var wg sync.WaitGroup
	for _, r := range order {
		wg.Add(1)
		go func(c *comm.Comm) {
			defer wg.Done()
			fn(c)
		}(cs[r])
	}
	wg.Wait()
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestFencedMatchesUnfencedExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		dims := []int{1 + rng.Intn(9), 1 + rng.Intn(9)}
		mk := func() *dad.Template {
			axes := []dad.AxisDist{
				dad.BlockAxis(1 + rng.Intn(3)),
				dad.CyclicAxis(1 + rng.Intn(3)),
			}
			if rng.Intn(2) == 0 {
				axes[0], axes[1] = axes[1], axes[0]
			}
			out, err := dad.NewTemplate(dims, axes)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		src, dst := mk(), mk()
		s, err := schedule.Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		m, n := src.NumProcs(), dst.NumProcs()
		lay := Layout{SrcBase: 0, DstBase: m}
		srcLocals := fillByGlobal(src)
		order := rng.Perm(m + n)

		run := func(fenced bool) [][]float64 {
			got := make([][]float64, n)
			var mu sync.Mutex
			mem := core.NewMembership(m + n)
			launchShuffled(m+n, order, func(c *comm.Comm) {
				var sl, dl []float64
				if c.Rank() < m {
					sl = srcLocals[c.Rank()]
				} else {
					dl = make([]float64, dst.LocalCount(c.Rank()-m))
				}
				var err error
				if fenced {
					var out *Outcome
					out, err = ExchangeFenced(c, s, lay, sl, dl, 0, FenceOpts{Membership: mem})
					if err == nil && dl != nil && !out.Validity.AllValid() {
						t.Errorf("trial %d: clean fenced transfer invalidated elements", trial)
					}
				} else {
					err = Exchange(c, s, lay, sl, dl, 0)
				}
				if err != nil {
					t.Errorf("trial %d rank %d (fenced=%v): %v", trial, c.Rank(), fenced, err)
				}
				if dl != nil {
					mu.Lock()
					got[c.Rank()-m] = dl
					mu.Unlock()
				}
			})
			return got
		}

		plain := run(false)
		fenced := run(true)
		for r := range plain {
			if !bitsEqual(plain[r], fenced[r]) {
				t.Fatalf("trial %d: dst rank %d differs between fenced and unfenced engines\nplain:  %v\nfenced: %v",
					trial, r, plain[r], fenced[r])
			}
		}
		verify(t, dst, fenced)
	}
}

func TestFencedMatchesUnfencedLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		dims := []int{2 + rng.Intn(8), 2 + rng.Intn(8)}
		src, err := dad.NewTemplate(dims, []dad.AxisDist{dad.BlockAxis(1 + rng.Intn(2)), dad.BlockAxis(1 + rng.Intn(3))})
		if err != nil {
			t.Fatal(err)
		}
		dst, err := dad.NewTemplate(dims, []dad.AxisDist{dad.CyclicAxis(1 + rng.Intn(3)), dad.CollapsedAxis()})
		if err != nil {
			t.Fatal(err)
		}
		srcLin := linear.NewRowMajor(src)
		dstLin := linear.NewRowMajor(dst)
		m, n := src.NumProcs(), dst.NumProcs()
		lay := Layout{SrcBase: 0, DstBase: m}
		srcLocals := fillByGlobal(src)
		order := rng.Perm(m + n)

		run := func(fenced bool) [][]float64 {
			got := make([][]float64, n)
			var mu sync.Mutex
			mem := core.NewMembership(m + n)
			launchShuffled(m+n, order, func(c *comm.Comm) {
				var sl, dl []float64
				if c.Rank() < m {
					sl = srcLocals[c.Rank()]
				} else {
					dl = make([]float64, dst.LocalCount(c.Rank()-m))
				}
				var err error
				if fenced {
					_, err = LinearExchangeFenced(c, srcLin, dstLin, lay, m, n, sl, dl, 0, FenceOpts{Membership: mem})
				} else {
					err = LinearExchange(c, srcLin, dstLin, lay, m, n, sl, dl, 0)
				}
				if err != nil {
					t.Errorf("trial %d rank %d (fenced=%v): %v", trial, c.Rank(), fenced, err)
				}
				if dl != nil {
					mu.Lock()
					got[c.Rank()-m] = dl
					mu.Unlock()
				}
			})
			return got
		}

		plain := run(false)
		fenced := run(true)
		for r := range plain {
			if !bitsEqual(plain[r], fenced[r]) {
				t.Fatalf("trial %d: dst rank %d differs between fenced and unfenced linear engines", trial, r)
			}
		}
		verify(t, dst, fenced)
	}
}

// Differential guarantee for the planning fast path, end to end: a
// transfer driven by a closed-form schedule must fill destination buffers
// bit-identical to one driven by the patch-enumeration schedule for the
// same template pair. The schedule-level differential tests prove the
// plans equivalent; this proves the engine treats them identically.
func TestFastPathMatchesEnumeratorExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 8; trial++ {
		dims := []int{1 + rng.Intn(9), 1 + rng.Intn(9)}
		mk := func() *dad.Template {
			axes := []dad.AxisDist{
				dad.BlockAxis(1 + rng.Intn(3)),
				dad.CyclicAxis(1 + rng.Intn(3)),
			}
			if rng.Intn(2) == 0 {
				axes[0], axes[1] = axes[1], axes[0]
			}
			out, err := dad.NewTemplate(dims, axes)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		src, dst := mk(), mk()
		fast, err := schedule.Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.FastPath() {
			t.Fatalf("trial %d: closed-form pair %s → %s missed the fast path", trial, src.Key(), dst.Key())
		}
		enum, err := schedule.BuildWith(src, dst, schedule.BuildOpts{DisableFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		m, n := src.NumProcs(), dst.NumProcs()
		lay := Layout{SrcBase: 0, DstBase: m}
		srcLocals := fillByGlobal(src)
		order := rng.Perm(m + n)

		run := func(s *schedule.Schedule) [][]float64 {
			got := make([][]float64, n)
			var mu sync.Mutex
			launchShuffled(m+n, order, func(c *comm.Comm) {
				var sl, dl []float64
				if c.Rank() < m {
					sl = srcLocals[c.Rank()]
				} else {
					dl = make([]float64, dst.LocalCount(c.Rank()-m))
				}
				if err := Exchange(c, s, lay, sl, dl, 0); err != nil {
					t.Errorf("trial %d rank %d: %v", trial, c.Rank(), err)
				}
				if dl != nil {
					mu.Lock()
					got[c.Rank()-m] = dl
					mu.Unlock()
				}
			})
			return got
		}

		viaFast := run(fast)
		viaEnum := run(enum)
		for r := range viaEnum {
			if !bitsEqual(viaFast[r], viaEnum[r]) {
				t.Fatalf("trial %d: dst rank %d differs between fast-path and enumerator schedules\nfast: %v\nenum: %v",
					trial, r, viaFast[r], viaEnum[r])
			}
		}
		verify(t, dst, viaFast)
		fast.Recycle()
	}
}
