package redist

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/obs"
	"mxn/internal/schedule"
)

// Unit coverage of the round decomposition arithmetic: both sides of a
// budgeted transfer derive chunk counts independently from these, so
// their edge cases are protocol invariants.
func TestChunkMath(t *testing.T) {
	cases := []struct {
		budget, esz, wantCap int
	}{
		{1024, 8, 64},
		{1024, 4, 128},
		{16, 8, 1},
		{1, 8, 1},  // degenerate budget: element-at-a-time
		{15, 8, 1}, // budget under two elements: still one element per chunk
		{64, 16, 2},
	}
	for _, c := range cases {
		if got := chunkElemCap(c.budget, c.esz); got != c.wantCap {
			t.Errorf("chunkElemCap(%d, %d) = %d, want %d", c.budget, c.esz, got, c.wantCap)
		}
	}
	if got := chunkCount(0, 64); got != 1 {
		t.Errorf("a zero-element message must travel as exactly one chunk, got %d", got)
	}
	if got := chunkCount(65, 64); got != 2 {
		t.Errorf("chunkCount(65, 64) = %d, want 2", got)
	}
	if got := chunkCount(64, 64); got != 1 {
		t.Errorf("chunkCount(64, 64) = %d, want 1", got)
	}
	if got := nextChunkElems(0, 0, 64); got != 0 {
		t.Errorf("nextChunkElems on an empty message = %d, want 0", got)
	}
	if got := nextChunkElems(65, 64, 64); got != 1 {
		t.Errorf("nextChunkElems tail = %d, want 1", got)
	}
}

func bitsEqualT[T Elem](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		switch x := any(a[i]).(type) {
		case float64:
			if math.Float64bits(x) != math.Float64bits(any(b[i]).(float64)) {
				return false
			}
		case float32:
			if math.Float32bits(x) != math.Float32bits(any(b[i]).(float32)) {
				return false
			}
		default:
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// runBudgetExchangeT runs one schedule-driven transfer with the given
// budget (0 = unbudgeted) across shuffled concurrent ranks and returns
// the destination buffers.
func runBudgetExchangeT[T Elem](t *testing.T, src, dst *dad.Template, conv func(float64) T,
	budget int, fenced bool, order []int) [][]T {
	t.Helper()
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	m, n := src.NumProcs(), dst.NumProcs()
	srcLocals := fillByGlobalT(src, conv)
	dstLocals := make([][]T, n)
	var mu sync.Mutex
	mem := core.NewMembership(m + n)
	launchShuffled(m+n, order, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: m}
		var sl, dl []T
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]T, dst.LocalCount(c.Rank()-m))
		}
		var err error
		if fenced {
			fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond, MaxBytesInFlight: budget}
			var out *Outcome
			out, err = ExchangeFencedT[T](c, s, lay, sl, dl, 0, fo)
			if err == nil && dl != nil && !out.Validity.AllValid() {
				t.Errorf("clean budgeted fenced transfer invalidated elements")
			}
		} else {
			err = ExchangeWithT[T](c, s, lay, sl, dl, 0, TransferOpts{MaxBytesInFlight: budget})
		}
		if err != nil {
			t.Errorf("rank %d (budget=%d fenced=%v): %v", c.Rank(), budget, fenced, err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			mu.Unlock()
		}
	})
	return dstLocals
}

// The tentpole differential guarantee: a budgeted transfer fills
// destination buffers bit-identical to the unbudgeted engine, for every
// element kind, fenced and unfenced, across budgets from degenerate
// (one element per chunk) through multi-round to larger-than-transfer.
// Run under -race by `make race`.
func testBudgetDifferential[T Elem](t *testing.T, name string, conv func(float64) T) {
	t.Run(name, func(t *testing.T) {
		src := tpl(t, []int{256}, dad.BlockAxis(2))
		dst := tpl(t, []int{256}, dad.CyclicAxis(2))
		rng := rand.New(rand.NewSource(91))
		ref := runBudgetExchangeT(t, src, dst, conv, 0, false, rng.Perm(4))
		verifyT(t, dst, ref, conv)
		esz := elemSize[T]()
		// 64*esz forces 4 rounds per source rank here: each source has
		// two 64-element ops, the chunk cap is 32 elements and a round
		// holds one chunk.
		budgets := []int{1, 8 * esz, 64 * esz, 1 << 20}
		for _, budget := range budgets {
			for _, fenced := range []bool{false, true} {
				rounds0 := mRoundsSent.Value()
				got := runBudgetExchangeT(t, src, dst, conv, budget, fenced, rng.Perm(4))
				for r := range ref {
					if !bitsEqualT(ref[r], got[r]) {
						t.Fatalf("budget %d fenced=%v: dst rank %d differs from unbudgeted\nwant: %v\ngot:  %v",
							budget, fenced, r, ref[r], got[r])
					}
				}
				if budget == 64*esz {
					if dr := mRoundsSent.Value() - rounds0; dr < 8 {
						t.Fatalf("budget %d: %d rounds across 2 sources, want >= 8 (>= 4 per source)", budget, dr)
					}
				}
			}
		}
	})
}

func TestBudgetedMatchesUnbudgetedExchange(t *testing.T) {
	testBudgetDifferential[float64](t, "float64", func(v float64) float64 { return v })
	testBudgetDifferential[float32](t, "float32", func(v float64) float32 { return float32(v) })
	testBudgetDifferential[int64](t, "int64", func(v float64) int64 { return int64(v) })
	testBudgetDifferential[int32](t, "int32", func(v float64) int32 { return int32(v) })
	testBudgetDifferential[complex128](t, "complex128", func(v float64) complex128 { return complex(v, -v) })
}

// Linear-path differential: the receiver-driven protocol's replies move
// through the same budgeted rounds, including zero-element replies from
// sources whose owned set misses the destination's needs entirely.
func TestBudgetedMatchesUnbudgetedLinear(t *testing.T) {
	cases := []struct {
		name     string
		src, dst *dad.Template
	}{
		{"overlap", tpl(t, []int{96}, dad.BlockAxis(2)), tpl(t, []int{96}, dad.CyclicAxis(2))},
		// Block→Block aligned: every cross intersection is empty, so
		// half the replies are zero-element chunks through the splitter.
		{"empty-intersections", tpl(t, []int{64}, dad.BlockAxis(2)), tpl(t, []int{64}, dad.BlockAxis(2))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srcLin := linear.NewRowMajor(tc.src)
			dstLin := linear.NewRowMajor(tc.dst)
			m, n := tc.src.NumProcs(), tc.dst.NumProcs()
			srcLocals := fillByGlobal(tc.src)
			rng := rand.New(rand.NewSource(17))

			run := func(budget int, fenced bool) [][]float64 {
				got := make([][]float64, n)
				var mu sync.Mutex
				mem := core.NewMembership(m + n)
				launchShuffled(m+n, rng.Perm(m+n), func(c *comm.Comm) {
					lay := Layout{SrcBase: 0, DstBase: m}
					var sl, dl []float64
					if c.Rank() < m {
						sl = srcLocals[c.Rank()]
					} else {
						dl = make([]float64, tc.dst.LocalCount(c.Rank()-m))
					}
					var err error
					if fenced {
						fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond, MaxBytesInFlight: budget}
						_, err = LinearExchangeFencedT[float64](c, srcLin, dstLin, lay, m, n, sl, dl, 0, fo)
					} else {
						err = LinearExchangeWithT[float64](c, srcLin, dstLin, lay, m, n, sl, dl, 0, TransferOpts{MaxBytesInFlight: budget})
					}
					if err != nil {
						t.Errorf("rank %d (budget=%d fenced=%v): %v", c.Rank(), budget, fenced, err)
					}
					if dl != nil {
						mu.Lock()
						got[c.Rank()-m] = dl
						mu.Unlock()
					}
				})
				return got
			}

			ref := run(0, false)
			verify(t, tc.dst, ref)
			for _, budget := range []int{1, 16 * 8, 1 << 20} {
				for _, fenced := range []bool{false, true} {
					got := run(budget, fenced)
					for r := range ref {
						if !bitsEqual(ref[r], got[r]) {
							t.Fatalf("budget %d fenced=%v: dst rank %d differs from unbudgeted", budget, fenced, r)
						}
					}
				}
			}
		})
	}
}

// The budget's reason to exist: resident packed bytes stay bounded by
// MaxBytesInFlight per sending rank, measured by the engine's own
// packed-bytes watermark (counted from newMsg until recycle, wherever
// the chunk sits — staged, queued or being unpacked).
func TestBudgetedPeakBytesBounded(t *testing.T) {
	src := tpl(t, []int{1 << 12}, dad.BlockAxis(2))
	dst := tpl(t, []int{1 << 12}, dad.CyclicAxis(2))
	const budget = 1 << 10
	ResetPackedBytesHighWater()
	base := PackedBytesHighWater()
	conv := func(v float64) float64 { return v }
	got := runBudgetExchangeT(t, src, dst, conv, budget, false, []int{0, 1, 2, 3})
	verify(t, dst, got)
	peak := PackedBytesHighWater() - base
	if limit := int64(2 * budget); peak > limit { // two sending ranks
		t.Fatalf("budgeted transfer peaked at %d packed bytes, budget bounds it by %d", peak, limit)
	}
	if peak <= 0 {
		t.Fatalf("watermark did not move (peak %d); accounting broken", peak)
	}
}

// The steady-state budgeted path allocates nothing: chunk buffers and
// headers cycle through the same pools as whole messages, acks are
// pooled markers, and the per-call round state is recycled. Unlike the
// unbudgeted steady-state harness, ranks must run concurrently (senders
// block on acks), so the workers are persistent goroutines signalled
// over pre-allocated channels and AllocsPerRun measures the whole
// process.
func TestExchangeBudgetedSteadyStateZeroAlloc(t *testing.T) {
	obs.DisableTracing()
	src := tpl(t, []int{1 << 10}, dad.BlockAxis(2))
	dst := tpl(t, []int{1 << 10}, dad.CyclicAxis(2))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	cs := comm.NewWorld(4).Comms()
	lay := Layout{SrcBase: 0, DstBase: 2}
	const budget = 1 << 10 // 8 chunks per source: several rounds per step
	srcLocals := make([][]float64, 2)
	dstLocals := make([][]float64, 2)
	for r := 0; r < 2; r++ {
		srcLocals[r] = make([]float64, src.LocalCount(r))
		dstLocals[r] = make([]float64, dst.LocalCount(r))
	}
	start := make([]chan struct{}, 4)
	done := make(chan error, 4)
	for r := 0; r < 4; r++ {
		start[r] = make(chan struct{}, 1)
		go func(r int) {
			var sl, dl []float64
			if r < 2 {
				sl = srcLocals[r]
			} else {
				dl = dstLocals[r-2]
			}
			for range start[r] {
				done <- ExchangeWith(cs[r], s, lay, sl, dl, 0, TransferOpts{MaxBytesInFlight: budget})
			}
		}(r)
	}
	defer func() {
		for r := range start {
			close(start[r])
		}
	}()
	step := func() {
		for r := 0; r < 4; r++ {
			start[r] <- struct{}{}
		}
		for r := 0; r < 4; r++ {
			if err := <-done; err != nil {
				t.Error(err)
			}
		}
	}
	// Warm until pools, mailbox rings and goroutine stacks reach their
	// steady capacity under concurrent interleavings.
	for i := 0; i < 8; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(20, step)
	if allocs != 0 {
		t.Fatalf("steady-state budgeted Exchange allocates: %v allocs per transfer step", allocs)
	}
}
