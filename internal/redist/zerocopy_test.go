package redist

import (
	"bytes"
	"testing"
	"time"

	"mxn/internal/bufpool"
	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/schedule"
	"mxn/internal/wire"
)

// runMatrixT runs one in-process exchange of the matrix shape —
// block(2) → block(3), every cross-cohort pair a single contiguous run —
// under the given knobs and returns the destination locals.
func runMatrixT[T Elem](t *testing.T, conv func(float64) T, fenced bool, budget int, zc bool) [][]T {
	t.Helper()
	src := tpl(t, []int{24}, dad.BlockAxis(2))
	dst := tpl(t, []int{24}, dad.BlockAxis(3))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	const m, n = 2, 3
	srcLocals := fillByGlobalT(src, conv)
	dstLocals := make([][]T, n)
	var mem *core.Membership
	if fenced {
		mem = core.NewMembership(m + n)
	}
	comm.Run(m+n, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: m}
		var sl, dl []T
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]T, dst.LocalCount(c.Rank()-m))
		}
		var xerr error
		if fenced {
			fo := FenceOpts{Membership: mem, PollInterval: time.Millisecond, MaxBytesInFlight: budget}
			_, xerr = ExchangeFencedT(c, s, lay, sl, dl, 0, fo)
		} else {
			opts := TransferOpts{MaxBytesInFlight: budget, ZeroCopyLocal: zc}
			xerr = ExchangeWithT(c, s, lay, sl, dl, 0, opts)
		}
		if xerr != nil {
			t.Errorf("rank %d: %v", c.Rank(), xerr)
		}
		if dl != nil {
			dstLocals[c.Rank()-m] = dl
		}
	})
	return dstLocals
}

func sameLocals[T Elem](t *testing.T, a, b [][]T) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("rank count differs: %d vs %d", len(a), len(b))
	}
	for r := range a {
		if !bytes.Equal(bytesOf(a[r]), bytesOf(b[r])) {
			t.Errorf("rank %d: zero-copy result differs bitwise from legacy", r)
		}
	}
}

// TestZeroCopyDifferentialMatrix: for every element kind, fenced and
// unfenced, budgeted and unbudgeted, the destination bytes with
// ZeroCopyLocal on are bit-identical to the legacy copying path, and the
// legacy path itself verifies against the fingerprints.
func TestZeroCopyDifferentialMatrix(t *testing.T) {
	type cfg struct {
		name   string
		fenced bool
		budget int
	}
	cfgs := []cfg{
		{"unfenced", false, 0},
		{"unfenced-budget", false, 64},
		{"fenced", true, 0},
		{"fenced-budget", true, 64},
	}
	run := func(t *testing.T, name string, body func(t *testing.T, fenced bool, budget int)) {
		for _, c := range cfgs {
			t.Run(name+"/"+c.name, func(t *testing.T) { body(t, c.fenced, c.budget) })
		}
	}
	run(t, "float64", func(t *testing.T, fenced bool, budget int) {
		conv := func(v float64) float64 { return v }
		legacy := runMatrixT(t, conv, fenced, budget, false)
		zc := runMatrixT(t, conv, fenced, budget, true)
		verifyT(t, tpl(t, []int{24}, dad.BlockAxis(3)), legacy, conv)
		sameLocals(t, legacy, zc)
	})
	run(t, "float32", func(t *testing.T, fenced bool, budget int) {
		conv := func(v float64) float32 { return float32(v) }
		legacy := runMatrixT(t, conv, fenced, budget, false)
		zc := runMatrixT(t, conv, fenced, budget, true)
		verifyT(t, tpl(t, []int{24}, dad.BlockAxis(3)), legacy, conv)
		sameLocals(t, legacy, zc)
	})
	run(t, "int64", func(t *testing.T, fenced bool, budget int) {
		conv := func(v float64) int64 { return int64(v) }
		legacy := runMatrixT(t, conv, fenced, budget, false)
		zc := runMatrixT(t, conv, fenced, budget, true)
		verifyT(t, tpl(t, []int{24}, dad.BlockAxis(3)), legacy, conv)
		sameLocals(t, legacy, zc)
	})
	run(t, "int32", func(t *testing.T, fenced bool, budget int) {
		conv := func(v float64) int32 { return int32(v) }
		legacy := runMatrixT(t, conv, fenced, budget, false)
		zc := runMatrixT(t, conv, fenced, budget, true)
		verifyT(t, tpl(t, []int{24}, dad.BlockAxis(3)), legacy, conv)
		sameLocals(t, legacy, zc)
	})
	run(t, "complex128", func(t *testing.T, fenced bool, budget int) {
		conv := func(v float64) complex128 { return complex(v, -v) }
		legacy := runMatrixT(t, conv, fenced, budget, false)
		zc := runMatrixT(t, conv, fenced, budget, true)
		verifyT(t, tpl(t, []int{24}, dad.BlockAxis(3)), legacy, conv)
		sameLocals(t, legacy, zc)
	})
}

// TestZeroCopyHitCounter: the all-contiguous shape takes the fast path
// on every cross-rank message when enabled, and never when disabled.
func TestZeroCopyHitCounter(t *testing.T) {
	conv := func(v float64) float64 { return v }

	before := mZeroCopyHits.Value()
	runMatrixT(t, conv, false, 0, false)
	if got := mZeroCopyHits.Value() - before; got != 0 {
		t.Fatalf("fast path taken %d times with ZeroCopyLocal off", got)
	}

	before = mZeroCopyHits.Value()
	runMatrixT(t, conv, false, 0, true)
	// block(2)→block(3) over 24 elements: 4 cross-rank contiguous sends.
	if got := mZeroCopyHits.Value() - before; got != 4 {
		t.Fatalf("fast-path hits = %d, want 4", got)
	}
}

// TestZeroCopyPacksNothing: during a pure-contiguous zero-copy exchange
// the packer is never invoked — the "at most one copy" claim, measured.
func TestZeroCopyPacksNothing(t *testing.T) {
	conv := func(v float64) float64 { return v }
	before := mElemsPacked.Value()
	runMatrixT(t, conv, false, 0, true)
	if got := mElemsPacked.Value() - before; got != 0 {
		t.Fatalf("packed %d elements during a zero-copy exchange, want 0", got)
	}
}

// TestZeroCopyNonContiguousFallsBack: a cyclic destination fragments
// every outgoing run, so the fast path must decline (misses, no hits)
// and the transfer still verifies.
func TestZeroCopyNonContiguousFallsBack(t *testing.T) {
	src := tpl(t, []int{24}, dad.BlockAxis(2))
	dst := tpl(t, []int{24}, dad.CyclicAxis(3))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	const m, n = 2, 3
	srcLocals := fillByGlobal(src)
	dstLocals := make([][]float64, n)
	hitsBefore := mZeroCopyHits.Value()
	missBefore := mZeroCopyMisses.Value()
	comm.Run(m+n, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: m}
		var sl, dl []float64
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		if err := ExchangeWithT(c, s, lay, sl, dl, 0, TransferOpts{ZeroCopyLocal: true}); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			dstLocals[c.Rank()-m] = dl
		}
	})
	verify(t, dst, dstLocals)
	if got := mZeroCopyHits.Value() - hitsBefore; got != 0 {
		t.Fatalf("fast-path hits = %d on a fragmented shape, want 0", got)
	}
	if mZeroCopyMisses.Value() == missBefore {
		t.Fatal("no fast-path misses recorded on a fragmented shape")
	}
}

// TestZeroCopySafeToMutateAfterReturn: Exchange with ZeroCopyLocal
// rendezvouses with every borrowing receiver before returning, so a
// caller who overwrites srcLocal the moment Exchange returns cannot
// corrupt the destination.
func TestZeroCopySafeToMutateAfterReturn(t *testing.T) {
	src := tpl(t, []int{24}, dad.BlockAxis(2))
	dst := tpl(t, []int{24}, dad.BlockAxis(3))
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	const m, n = 2, 3
	for round := 0; round < 50; round++ {
		srcLocals := fillByGlobal(src)
		dstLocals := make([][]float64, n)
		comm.Run(m+n, func(c *comm.Comm) {
			lay := Layout{SrcBase: 0, DstBase: m}
			var sl, dl []float64
			if c.Rank() < m {
				sl = srcLocals[c.Rank()]
			} else {
				dl = make([]float64, dst.LocalCount(c.Rank()-m))
			}
			if err := ExchangeWithT(c, s, lay, sl, dl, 0, TransferOpts{ZeroCopyLocal: true}); err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
			}
			// The contract under test: the lent views are dead the moment
			// Exchange returns.
			for i := range sl {
				sl[i] = -1
			}
			if dl != nil {
				dstLocals[c.Rank()-m] = dl
			}
		})
		verify(t, dst, dstLocals)
		if t.Failed() {
			t.Fatalf("corruption after %d clean rounds", round)
		}
	}
}

// TestZeroCopySelfSendAliased: identity redistribution with srcLocal and
// dstLocal aliased to the same slice. Self-sends are excluded from the
// fast path (a borrowed view over the unpack target would corrupt), so
// this must work with ZeroCopyLocal on, and record no hits.
func TestZeroCopySelfSendAliased(t *testing.T) {
	src := tpl(t, []int{16}, dad.BlockAxis(2))
	s, err := schedule.Build(src, src)
	if err != nil {
		t.Fatal(err)
	}
	locals := fillByGlobal(src)
	before := mZeroCopyHits.Value()
	comm.Run(2, func(c *comm.Comm) {
		lay := Layout{SrcBase: 0, DstBase: 0}
		buf := locals[c.Rank()]
		if err := ExchangeWithT(c, s, lay, buf, buf, 0, TransferOpts{ZeroCopyLocal: true}); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
	})
	verify(t, src, locals)
	if got := mZeroCopyHits.Value() - before; got != 0 {
		t.Fatalf("fast path lent a view on a self-send: %d hits", got)
	}
}

// TestXferMsgCodecBorrowBitIdentical: the borrow-mode encode of a
// transfer message splits into header+payload whose concatenation is
// bit-identical to the legacy single-buffer encode, and the decode of
// either does not alias the frame buffer.
func TestXferMsgCodecBorrowBitIdentical(t *testing.T) {
	build := func() *xferMsg {
		m := getMsg()
		m.epoch = 3
		m.kind = dad.Float64
		m.elems = 4
		m.ack = true
		m.have = linear.Set{{Lo: 2, Hi: 6}}
		m.data = bufpool.Get(32)
		for i := range m.data {
			m.data[i] = byte(i * 3)
		}
		addInFlight(len(m.data))
		return m
	}

	e1 := wire.NewEncoder(nil)
	if !encodeXferMsg(e1, build()) {
		t.Fatal("legacy encode refused an *xferMsg")
	}
	legacy := append([]byte(nil), e1.Bytes()...)

	e2 := wire.NewEncoderV(nil)
	if !encodeXferMsg(e2, build()) {
		t.Fatal("borrow encode refused an *xferMsg")
	}
	head, data := e2.Vector()
	if data == nil {
		t.Fatal("borrow-mode encode did not borrow the payload")
	}
	vec := append(append([]byte(nil), head...), data...)
	if !bytes.Equal(legacy, vec) {
		t.Fatalf("borrow encoding differs from legacy\nlegacy % x\nborrow % x", legacy, vec)
	}
	bufpool.Put(data) // ownership passed to us (standing in for the conn)

	// Decode from a frame buffer, then scribble over the buffer: the
	// message must hold its own copy.
	frame := append([]byte(nil), legacy...)
	v, err := decodeXferMsg(wire.NewDecoder(frame))
	if err != nil {
		t.Fatal(err)
	}
	m := v.(*xferMsg)
	if m.epoch != 3 || m.kind != dad.Float64 || m.elems != 4 || !m.ack {
		t.Fatalf("decoded fields: %+v", m)
	}
	if len(m.have) != 1 || m.have[0] != (linear.Interval{Lo: 2, Hi: 6}) {
		t.Fatalf("decoded have: %v", m.have)
	}
	want := append([]byte(nil), m.data...)
	for i := range frame {
		frame[i] = 0xFF
	}
	if !bytes.Equal(m.data, want) {
		t.Fatal("decoded payload aliases the frame buffer")
	}
	recycle(m)
}
