// Element codec: the bridge between the generic transfer engine and the
// raw-byte message payloads. The engine is parameterized by an element
// type; the codec maps that type to its dad.ElemKind tag (carried in every
// message so receivers can reject kind mismatches) and reinterprets pooled
// byte buffers as element slices without copying.

package redist

import (
	"fmt"
	"unsafe"

	"mxn/internal/dad"
)

// Elem enumerates the element types the transfer engine moves. The
// constraint is exact (no ~): each member must map one-to-one onto a
// dad.ElemKind wire tag, which a named type with a different identity
// would break.
type Elem interface {
	float64 | float32 | int64 | int32 | complex128
}

// kindOf returns the dad.ElemKind tag for T. Boxing the zero value does
// not allocate (the runtime serves zero values from a static area), so
// this is safe on the zero-alloc path.
func kindOf[T Elem]() dad.ElemKind {
	var z T
	switch any(z).(type) {
	case float64:
		return dad.Float64
	case float32:
		return dad.Float32
	case int64:
		return dad.Int64
	case int32:
		return dad.Int32
	case complex128:
		return dad.Complex128
	}
	panic("redist: unreachable element type")
}

// elemSize returns the in-memory (and on-wire) byte size of T.
func elemSize[T Elem]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// elemsOf reinterprets a byte buffer as n elements of type T without
// copying. The buffer must come from bufpool (8-byte-aligned backing) and
// hold at least n*elemSize[T]() bytes.
func elemsOf[T Elem](b []byte, n int) []T {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

// bytesOf is the inverse of elemsOf: a byte view over the caller's
// element slice, no copy. The view aliases s — the zero-copy fast path
// sends it and must not let the caller mutate s until the receiver has
// unpacked.
func bytesOf[T Elem](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*elemSize[T]())
}

// alignedFor reports whether p satisfies the alignment bufpool buffers
// guarantee (8 bytes). User slices of any Elem type are naturally
// aligned to their element size, but a slice carved out of a
// reinterpreted byte buffer might not be — the fast path refuses those
// rather than ship a view a receiver-side reinterpret could not legally
// produce.
func alignedFor[T Elem](s []T) bool {
	if len(s) == 0 {
		return true
	}
	align := min(elemSize[T](), 8)
	return uintptr(unsafe.Pointer(unsafe.SliceData(s)))%uintptr(align) == 0
}

// ElemKindError reports a received fragment whose element kind tag does
// not match the destination buffer's element type — two cohorts disagreed
// about the data type of the connected field.
type ElemKindError struct {
	Transfer string // "exchange" or "linear"
	DstRank  int
	SrcRank  int
	Got      dad.ElemKind
	Want     dad.ElemKind
}

func (e *ElemKindError) Error() string {
	return fmt.Sprintf("redist: %s transfer: destination rank %d received %v elements from source rank %d, expected %v",
		e.Transfer, e.DstRank, e.Got, e.SrcRank, e.Want)
}
