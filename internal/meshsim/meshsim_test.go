package meshsim

import (
	"math"
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/mct"
)

func TestRegridMatrixRowsNormalized(t *testing.T) {
	m := RegridMatrix(6, 12, 4, 8)
	if m.NRows != 32 || m.NCols != 72 {
		t.Fatalf("shape %d×%d", m.NRows, m.NCols)
	}
	sums := make([]float64, m.NRows)
	for k := range m.Vals {
		if m.Vals[k] < 0 {
			t.Fatalf("negative weight %v", m.Vals[k])
		}
		sums[m.Rows[k]] += m.Vals[k]
	}
	for r, s := range sums {
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("row %d sums to %v", r, s)
		}
	}
}

func TestRegridPreservesConstants(t *testing.T) {
	m := RegridMatrix(8, 16, 5, 10)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 42
	}
	y := make([]float64, m.NRows)
	for k := range m.Vals {
		y[m.Rows[k]] += m.Vals[k] * x[m.Cols[k]]
	}
	for r, v := range y {
		if math.Abs(v-42) > 1e-9 {
			t.Errorf("row %d: %v", r, v)
		}
	}
}

func TestRegridSmoothFieldAccuracy(t *testing.T) {
	// Interpolating a smooth function from fine to coarse should land
	// within a few percent.
	const nlatS, nlonS, nlatD, nlonD = 24, 48, 12, 24
	m := RegridMatrix(nlatS, nlonS, nlatD, nlonD)
	src := mct.LatLonGrid(nlatS, nlonS)
	dst := mct.LatLonGrid(nlatD, nlonD)
	f := func(lat, lon float64) float64 {
		return math.Cos(lat*math.Pi/180) * math.Sin(lon*math.Pi/180)
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = f(src.Coord("lat")[i], src.Coord("lon")[i])
	}
	y := make([]float64, m.NRows)
	for k := range m.Vals {
		y[m.Rows[k]] += m.Vals[k] * x[m.Cols[k]]
	}
	for i := range y {
		want := f(dst.Coord("lat")[i], dst.Coord("lon")[i])
		if math.Abs(y[i]-want) > 0.05 {
			t.Errorf("point %d: interp %v, exact %v", i, y[i], want)
		}
	}
}

func TestAtmosphereOceanShapes(t *testing.T) {
	atm := NewAtmosphere(8, 16)
	if atm.Grid.Points() != 128 {
		t.Fatal("atm grid size")
	}
	m := mct.BlockMap(128, 2)
	av := mct.MustAttrVect([]string{"t", "q"}, m.LocalSize(0))
	atm.Eval(m, 0, 3, av)
	// Temperatures in a physical range.
	for _, v := range av.Field("t") {
		if v < 250 || v > 320 {
			t.Errorf("t = %v out of range", v)
		}
	}
	ocn := NewOcean(4, 8)
	om := mct.BlockMap(32, 1)
	sst := make([]float64, 32)
	ocn.InitSST(om, 0, sst)
	forcing := make([]float64, 32)
	for i := range forcing {
		forcing[i] = 300
	}
	before := sst[0]
	ocn.Relax(sst, forcing)
	if sst[0] == before || sst[0] > 300 {
		t.Errorf("relaxation did not move SST toward forcing: %v -> %v", before, sst[0])
	}
}

func TestLocalMatrixPartition(t *testing.T) {
	g := RegridMatrix(6, 6, 4, 4)
	yMap := mct.BlockMap(16, 3)
	total := 0
	for r := 0; r < 3; r++ {
		lm := LocalMatrix(g, yMap, r)
		total += lm.NNZ()
		for k := range lm.Vals {
			if yMap.OwnerOf(lm.Rows[k]) != r {
				t.Fatalf("rank %d holds foreign row %d", r, lm.Rows[k])
			}
		}
	}
	if total != g.NNZ() {
		t.Errorf("partition covers %d of %d elements", total, g.NNZ())
	}
}

func TestHeat2DConservesShapeAndDecays(t *testing.T) {
	const n, np = 32, 4
	h, err := NewHeat2D(n, np)
	if err != nil {
		t.Fatal(err)
	}
	fields := make([][]float64, np)
	var mu sync.Mutex
	comm.Run(np, func(c *comm.Comm) {
		r := c.Rank()
		u := h.Init(r)
		for step := 0; step < 50; step++ {
			u = h.Step(c, r, u, 0.2, 0)
		}
		mu.Lock()
		fields[r] = u
		mu.Unlock()
	})
	// Heat diffuses: the max must drop below the initial 100 but the
	// total must stay positive.
	maxV, sum := 0.0, 0.0
	for _, f := range fields {
		for _, v := range f {
			if v > maxV {
				maxV = v
			}
			if v < -1e-9 {
				t.Fatalf("negative temperature %v", v)
			}
			sum += v
		}
	}
	if maxV >= 100 || maxV <= 0 {
		t.Errorf("max after diffusion = %v", maxV)
	}
	if sum <= 0 {
		t.Errorf("total heat = %v", sum)
	}
}

func TestHeat2DMatchesSerial(t *testing.T) {
	// The 3-rank parallel solver must agree exactly with a 1-rank run.
	const n, steps = 16, 10
	serial, err := NewHeat2D(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	comm.Run(1, func(c *comm.Comm) {
		u := serial.Init(0)
		for s := 0; s < steps; s++ {
			u = serial.Step(c, 0, u, 0.15, 0)
		}
		want = u
	})
	const np = 3
	par, err := NewHeat2D(n, np)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n*n)
	var mu sync.Mutex
	comm.Run(np, func(c *comm.Comm) {
		r := c.Rank()
		u := par.Init(r)
		for s := 0; s < steps; s++ {
			u = par.Step(c, r, u, 0.15, 0)
		}
		lo, _ := par.Rows(r)
		mu.Lock()
		copy(got[lo*n:], u)
		mu.Unlock()
	})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("cell %d: parallel %v serial %v", i, got[i], want[i])
		}
	}
}

func TestFillSineDeterministic(t *testing.T) {
	h, _ := NewHeat2D(8, 2)
	tpl := h.Template()
	a := make([]float64, tpl.LocalCount(0))
	b := make([]float64, tpl.LocalCount(0))
	FillSine(tpl, 0, a)
	FillSine(tpl, 0, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FillSine not deterministic")
		}
	}
	nonzero := false
	for _, v := range a {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("FillSine produced all zeros")
	}
}
