// Package meshsim provides the scientific workloads that drive the
// examples and benchmarks: toy atmosphere and ocean models on lat-lon
// grids of different resolutions (the coupled-climate scenario motivating
// MCT), a conservative-style regridding matrix builder, a distributed
// 2-D heat-equation solver (the steered simulation of the CUMULVS
// example), and deterministic field generators for benchmarks.
//
// The paper's evaluation environment — production climate components on a
// testbed — is substituted by these synthetic models: they exercise the
// same middleware code paths (multi-resolution coupling, interpolation,
// accumulation, persistent visualization channels) with physically-shaped
// data.
package meshsim

import (
	"math"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/mct"
)

// Atmosphere is a toy atmospheric model on an nlat×nlon grid: its state
// is an analytic travelling wave, cheap to evaluate yet smooth enough for
// interpolation accuracy and conservation checks.
type Atmosphere struct {
	NLat, NLon int
	Grid       *mct.GeneralGrid
	omega      float64
}

// NewAtmosphere builds the model and its grid.
func NewAtmosphere(nlat, nlon int) *Atmosphere {
	return &Atmosphere{NLat: nlat, NLon: nlon, Grid: mct.LatLonGrid(nlat, nlon), omega: 0.15}
}

// Eval fills av's "t" (temperature) and "q" (moisture flux) attributes at
// the given step for the local points of a segment map.
func (a *Atmosphere) Eval(m *mct.GlobalSegMap, rank, step int, av *mct.AttrVect) {
	lat := a.Grid.Coord("lat")
	lon := a.Grid.Coord("lon")
	tf := av.Field("t")
	qf := av.Field("q")
	for li, gi := range m.LocalPoints(rank) {
		phi := lat[gi] * math.Pi / 180
		lam := lon[gi] * math.Pi / 180
		tf[li] = 288 + 30*math.Cos(phi)*math.Cos(lam+a.omega*float64(step))
		qf[li] = 5 * math.Sin(2*phi) * math.Sin(lam-a.omega*float64(step))
	}
}

// Ocean is a toy ocean model: sea-surface temperature relaxing toward the
// atmospheric temperature delivered by the coupler.
type Ocean struct {
	NLat, NLon int
	Grid       *mct.GeneralGrid
	Kappa      float64 // relaxation coefficient per coupling interval
}

// NewOcean builds the model and its grid.
func NewOcean(nlat, nlon int) *Ocean {
	return &Ocean{NLat: nlat, NLon: nlon, Grid: mct.LatLonGrid(nlat, nlon), Kappa: 0.2}
}

// InitSST fills an initial sea-surface temperature field for the local
// points of a segment map.
func (o *Ocean) InitSST(m *mct.GlobalSegMap, rank int, sst []float64) {
	lat := o.Grid.Coord("lat")
	for li, gi := range m.LocalPoints(rank) {
		phi := lat[gi] * math.Pi / 180
		sst[li] = 278 + 20*math.Cos(phi)
	}
}

// Relax advances SST one coupling interval toward the forcing
// temperature.
func (o *Ocean) Relax(sst, forcing []float64) {
	for i := range sst {
		sst[i] += o.Kappa * (forcing[i] - sst[i])
	}
}

// cellEdges returns the n+1 edge coordinates of a uniform axis over
// [lo, hi].
func cellEdges(lo, hi float64, n int) []float64 {
	e := make([]float64, n+1)
	d := (hi - lo) / float64(n)
	for i := range e {
		e[i] = lo + float64(i)*d
	}
	return e
}

// overlap1D returns the per-pair overlap lengths of two uniform axis
// partitions, indexed [dst][src], omitting zero entries via a sparse map.
func overlap1D(srcEdges, dstEdges []float64) map[[2]int]float64 {
	out := map[[2]int]float64{}
	for d := 0; d < len(dstEdges)-1; d++ {
		dLo, dHi := dstEdges[d], dstEdges[d+1]
		for s := 0; s < len(srcEdges)-1; s++ {
			lo := math.Max(dLo, srcEdges[s])
			hi := math.Min(dHi, srcEdges[s+1])
			if hi > lo {
				out[[2]int{d, s}] = hi - lo
			}
		}
	}
	return out
}

// RegridMatrix builds a first-order area-overlap interpolation matrix
// from an nlatS×nlonS lat-lon grid to an nlatD×nlonD one (row-major point
// ordering, latitude-major). Rows are normalized, so constant fields are
// reproduced exactly; smooth fields interpolate to first order. This is
// the numerical kernel the paper's M×N work deliberately leaves to
// toolkits like MCT — built here because the climate example needs it.
func RegridMatrix(nlatS, nlonS, nlatD, nlonD int) *mct.SparseMatrix {
	m := &mct.SparseMatrix{NRows: nlatD * nlonD, NCols: nlatS * nlonS}
	latOv := overlap1D(cellEdges(-90, 90, nlatS), cellEdges(-90, 90, nlatD))
	lonOv := overlap1D(cellEdges(-180, 180, nlonS), cellEdges(-180, 180, nlonD))
	// Group by destination for row normalization.
	type ent struct {
		col int
		w   float64
	}
	rows := make([][]ent, m.NRows)
	for dk, wLat := range latOv {
		for lk, wLon := range lonOv {
			dRow := dk[0]*nlonD + lk[0]
			sCol := dk[1]*nlonS + lk[1]
			rows[dRow] = append(rows[dRow], ent{col: sCol, w: wLat * wLon})
		}
	}
	for r, es := range rows {
		total := 0.0
		for _, e := range es {
			total += e.w
		}
		for _, e := range es {
			m.Add(r, e.col, e.w/total)
		}
	}
	return m
}

// LocalMatrix extracts the rows of a global matrix owned by rank under
// the destination segment map — the per-rank piece mct.NewMatVec expects.
func LocalMatrix(global *mct.SparseMatrix, yMap *mct.GlobalSegMap, rank int) *mct.SparseMatrix {
	local := &mct.SparseMatrix{NRows: global.NRows, NCols: global.NCols}
	for k := range global.Vals {
		if yMap.OwnerOf(global.Rows[k]) == rank {
			local.Add(global.Rows[k], global.Cols[k], global.Vals[k])
		}
	}
	return local
}

// Heat2D is an explicit finite-difference heat equation on an N×N grid,
// row-block distributed: the steered simulation of the CUMULVS example.
// Rank r owns a contiguous band of rows; Step exchanges one halo row with
// each neighbor and advances the interior.
type Heat2D struct {
	N  int
	NP int

	tpl *dad.Template
}

// NewHeat2D builds the solver's decomposition: N×N, rows blocked over np
// ranks.
func NewHeat2D(n, np int) (*Heat2D, error) {
	tpl, err := dad.NewTemplate([]int{n, n}, []dad.AxisDist{dad.BlockAxis(np), dad.CollapsedAxis()})
	if err != nil {
		return nil, err
	}
	return &Heat2D{N: n, NP: np, tpl: tpl}, nil
}

// Template returns the field's DAD template (rows × collapsed columns).
func (h *Heat2D) Template() *dad.Template { return h.tpl }

// Rows returns rank's owned row range [lo, hi).
func (h *Heat2D) Rows(rank int) (lo, hi int) {
	b := (h.N + h.NP - 1) / h.NP
	lo = rank * b
	hi = lo + b
	if hi > h.N {
		hi = h.N
	}
	return lo, hi
}

// Init returns rank's initial local field: a hot square in the domain
// center.
func (h *Heat2D) Init(rank int) []float64 {
	lo, hi := h.Rows(rank)
	u := make([]float64, (hi-lo)*h.N)
	for r := lo; r < hi; r++ {
		for c := 0; c < h.N; c++ {
			if r > h.N/3 && r < 2*h.N/3 && c > h.N/3 && c < 2*h.N/3 {
				u[(r-lo)*h.N+c] = 100
			}
		}
	}
	return u
}

// Step advances rank's band one time step with diffusivity alpha,
// exchanging halo rows with neighbor ranks over the cohort communicator.
// Boundary condition: fixed zero at the domain edge. tag reserves the
// halo-exchange namespace.
func (h *Heat2D) Step(c *comm.Comm, rank int, u []float64, alpha float64, tag int) []float64 {
	lo, hi := h.Rows(rank)
	n := h.N
	rows := hi - lo
	// Post halo sends first (non-blocking), then receive.
	if rank > 0 && rows > 0 {
		top := make([]float64, n)
		copy(top, u[:n])
		c.Send(rank-1, tag, top)
	}
	if rank < h.NP-1 && rows > 0 {
		bottom := make([]float64, n)
		copy(bottom, u[(rows-1)*n:])
		c.Send(rank+1, tag, bottom)
	}
	var above, below []float64
	if rank > 0 && rows > 0 {
		payload, _ := c.Recv(rank-1, tag)
		above = payload.([]float64)
	}
	if rank < h.NP-1 && rows > 0 {
		payload, _ := c.Recv(rank+1, tag)
		below = payload.([]float64)
	}
	out := make([]float64, len(u))
	at := func(r, cc int) float64 {
		switch {
		case cc < 0 || cc >= n:
			return 0
		case r < 0:
			if above == nil {
				return 0
			}
			return above[cc]
		case r >= rows:
			if below == nil {
				return 0
			}
			return below[cc]
		default:
			return u[r*n+cc]
		}
	}
	for r := 0; r < rows; r++ {
		gr := lo + r
		for cc := 0; cc < n; cc++ {
			if gr == 0 || gr == n-1 || cc == 0 || cc == n-1 {
				out[r*n+cc] = 0 // fixed boundary
				continue
			}
			lap := at(r-1, cc) + at(r+1, cc) + at(r, cc-1) + at(r, cc+1) - 4*u[r*n+cc]
			out[r*n+cc] = u[r*n+cc] + alpha*lap
		}
	}
	return out
}

// FillSine writes a deterministic smooth field into a template's local
// buffer: the standard benchmark payload.
func FillSine(tpl *dad.Template, rank int, out []float64) {
	dims := tpl.Dims()
	idx := make([]int, len(dims))
	var walk func(a int)
	walk = func(a int) {
		if a == len(dims) {
			if tpl.OwnerOf(idx) == rank {
				v := 0.0
				for x, i := range idx {
					v += math.Sin(float64(i)*0.1 + float64(x))
				}
				out[tpl.LocalOffset(rank, idx)] = v
			}
			return
		}
		for i := 0; i < dims[a]; i++ {
			idx[a] = i
			walk(a + 1)
		}
	}
	walk(0)
}
