package chaosnet

import (
	"sync"
	"testing"
	"time"

	"mxn/internal/comm"
)

// TestChaosNetCommOrderedExactlyOnce soaks the raw comm layer over a
// flapping session link: two senders in world A stream sequence-numbered
// payloads to three receivers in world B; every receiver checks
// per-sender ordering and exactly-once delivery. This pins the FIFO and
// no-loss/no-dup guarantees that the redist protocols above (budget.go
// chunk attribution in particular) rely on.
func TestChaosNetCommOrderedExactlyOnce(t *testing.T) {
	defer watchdog(t, 60*time.Second)()
	const m, n, msgs = 2, 3, 200
	lst := flappingListener(t, 25)
	cli, srv := sessionPair(t, lst)

	total := m + n
	wa := comm.NewWorld(total)
	wb := comm.NewWorld(total)
	var srcRanks, dstRanks, all []int
	for r := 0; r < total; r++ {
		all = append(all, r)
		if r < m {
			srcRanks = append(srcRanks, r)
		} else {
			dstRanks = append(dstRanks, r)
		}
	}
	pa := wa.ConnectPeer(cli, dstRanks)
	pb := wb.ConnectPeer(srv, srcRanks)
	t.Cleanup(func() { pa.Close(); pb.Close() })
	csA := wa.SharedGroup(1, all)
	csB := wb.SharedGroup(1, all)

	var wg sync.WaitGroup
	wg.Add(total)
	for r := 0; r < m; r++ {
		go func(c *comm.Comm) {
			defer wg.Done()
			for k := 0; k < msgs; k++ {
				for d := m; d < total; d++ {
					c.Send(d, 0, []int{c.Rank(), k})
				}
			}
		}(csA[r])
	}
	for r := m; r < total; r++ {
		go func(c *comm.Comm) {
			defer wg.Done()
			next := make([]int, m)
			for got := 0; got < m*msgs; got++ {
				v, from := c.Recv(comm.AnySource, 0)
				p := v.([]int)
				if p[0] != from {
					t.Errorf("rank %d: payload claims sender %d, envelope says %d (seq %d)", c.Rank(), p[0], from, p[1])
					return
				}
				if p[1] != next[from] {
					t.Errorf("rank %d: from %d got seq %d, want %d", c.Rank(), from, p[1], next[from])
					return
				}
				next[from]++
			}
		}(csB[r])
	}
	wg.Wait()
}
