// Package chaosnet soaks the full networked stack — comm worlds coupled
// by ConnectPeer, over internal/session's resumable connections, over
// faultconn-injected physical links, over real TCP — and asserts the
// paper-level guarantees hold under link chaos:
//
//   - an epoch-fenced redistribution whose physical link flaps
//     mid-transfer completes bit-identically, with no rank ever marked
//     down (the session layer absorbs every outage);
//   - PRMI invocations over a flapping link execute exactly once — no
//     call lost to a blackholed frame, none duplicated by a replay;
//   - when an outage outlives the session's redial budget the circuit
//     opens with a typed session.ErrPeerLost, the bound ranks die, the
//     heartbeat detector converts that into membership changes, and the
//     fenced transfer policies resolve it — FailStrict with a typed
//     abort, FailRedistribute with a validity bitmap — instead of
//     hanging.
//
// Run via `make chaos-net` (or any -run Chaos matcher) under -race.
package chaosnet

import (
	"context"
	"errors"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/faultconn"
	"mxn/internal/obs"
	"mxn/internal/prmi"
	"mxn/internal/redist"
	"mxn/internal/schedule"
	"mxn/internal/session"
	"mxn/internal/sidl"
	"mxn/internal/transport"
)

// watchdog aborts a wedged soak with a metrics snapshot plus all
// goroutine stacks, so a CI hang is diagnosable from the log instead of
// dying as a bare test-binary timeout. Returns a disarm func to defer.
func watchdog(t *testing.T, limit time.Duration) func() {
	t.Helper()
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(limit):
			obs.Default().WriteText(os.Stderr)
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			os.Stderr.Write(buf)
			panic("chaosnet: " + t.Name() + " wedged past " + limit.String())
		}
	}()
	return func() { close(done) }
}

func fastCfg() session.Config {
	return session.Config{
		MaxAttempts:      50,
		MaxElapsed:       30 * time.Second,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
		HandshakeTimeout: 5 * time.Second,
	}
}

// flappingListener stacks the chaos topology's server side: TCP, each
// accepted physical conn rigged to drop dead after flapAfter messages,
// sessions resumed across the flaps.
func flappingListener(t *testing.T, flapAfter int) *session.Listener {
	t.Helper()
	raw, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := faultconn.WrapListener(raw, faultconn.Scenario{Seed: 42, FlapAfter: flapAfter})
	lst := session.WrapListener(flaky, fastCfg())
	t.Cleanup(func() { lst.Close() })
	return lst
}

// sessionPair dials lst and returns both ends of one established session.
func sessionPair(t *testing.T, lst *session.Listener) (client, server transport.Conn) {
	t.Helper()
	type acc struct {
		c   transport.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := lst.Accept()
		ch <- acc{c, err}
	}()
	cli, err := session.Dial("tcp", lst.Addr(), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	return cli, srv.c
}

// fingerprint/fill/check mirror the redist test-suite convention: every
// global index owns a unique value, so any loss, duplication, or
// misrouting across reconnects breaks bit-identity.
func fingerprint(i int) float64 { return float64(i)*131 + 7 }

// TestChaosNetFencedExchangeOverFlaps runs repeated epoch-fenced
// exchanges between a source cohort and a destination cohort living in
// different worlds, while every physical connection under the session
// dies after a fixed message count. Every round must come back
// bit-identical with nobody marked down; odd rounds use the
// memory-bounded chunked protocol so credits flap too.
func TestChaosNetFencedExchangeOverFlaps(t *testing.T) {
	defer watchdog(t, 60*time.Second)()
	const m, n, elems, rounds = 2, 3, 48, 6
	src, err := dad.NewTemplate([]int{elems}, []dad.AxisDist{dad.BlockAxis(m)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{elems}, []dad.AxisDist{dad.CyclicAxis(n)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}

	lst := flappingListener(t, 25)
	cli, srv := sessionPair(t, lst)

	total := m + n
	wa := comm.NewWorld(total) // sources local, owns the dialing side
	wb := comm.NewWorld(total) // destinations local
	var srcRanks, dstRanks, all []int
	for r := 0; r < total; r++ {
		all = append(all, r)
		if r < m {
			srcRanks = append(srcRanks, r)
		} else {
			dstRanks = append(dstRanks, r)
		}
	}
	pa := wa.ConnectPeer(cli, dstRanks)
	pb := wb.ConnectPeer(srv, srcRanks)
	t.Cleanup(func() { pa.Close(); pb.Close() })
	csA := wa.SharedGroup(1, all)
	csB := wb.SharedGroup(1, all)

	// Each side fences against its own all-alive membership: the soak's
	// claim is that flaps never surface as deaths.
	memA := core.NewMembership(total)
	memB := core.NewMembership(total)

	srcLocals := make([][]float64, m)
	for r := 0; r < m; r++ {
		srcLocals[r] = make([]float64, src.LocalCount(r))
	}
	for i := 0; i < elems; i++ {
		r := src.OwnerOf([]int{i})
		srcLocals[r][src.LocalOffset(r, []int{i})] = fingerprint(i)
	}

	lay := redist.Layout{SrcBase: 0, DstBase: m}
	var wg sync.WaitGroup
	var mu sync.Mutex
	dstLocals := make([][][]float64, rounds)
	for e := range dstLocals {
		dstLocals[e] = make([][]float64, n)
	}
	body := func(c *comm.Comm, mem *core.Membership) {
		defer wg.Done()
		for e := 0; e < rounds; e++ {
			opts := redist.FenceOpts{
				Membership:   mem,
				Policy:       redist.FailStrict,
				PollInterval: time.Millisecond,
			}
			if e%2 == 1 {
				opts.MaxBytesInFlight = 128
			}
			var sl, dl []float64
			if c.Rank() < m {
				sl = srcLocals[c.Rank()]
			} else {
				dl = make([]float64, dst.LocalCount(c.Rank()-m))
			}
			// Distinct baseTag per round: a tag identifies one transfer.
			// The budgeted chunk/ack protocol multiplexes AnySource under
			// its data tag, so with no barrier between rounds a source that
			// finishes a fire-and-forget round can land next-round messages
			// inside a slower peer's still-running loop if the tag repeats.
			out, err := redist.ExchangeFenced(c, s, lay, sl, dl, e*4, opts)
			if err != nil {
				t.Errorf("round %d rank %d: %v", e, c.Rank(), err)
				return
			}
			if len(out.Down) != 0 {
				t.Errorf("round %d rank %d: flap surfaced as deaths %v", e, c.Rank(), out.Down)
				return
			}
			if dl != nil {
				mu.Lock()
				dstLocals[e][c.Rank()-m] = dl
				mu.Unlock()
			}
		}
	}
	wg.Add(total)
	for r := 0; r < m; r++ {
		go body(csA[r], memA)
	}
	for r := m; r < total; r++ {
		go body(csB[r], memB)
	}
	wg.Wait()

	for e := 0; e < rounds; e++ {
		for i := 0; i < elems; i++ {
			r := dst.OwnerOf([]int{i})
			got := dstLocals[e][r][dst.LocalOffset(r, []int{i})]
			if got != fingerprint(i) {
				t.Fatalf("round %d index %d on dst rank %d: got %v, want %v", e, i, r, got, fingerprint(i))
			}
		}
	}
	if memA.Epoch() != 1 || memB.Epoch() != 1 {
		t.Fatalf("membership changed under pure link chaos: epochs %d/%d", memA.Epoch(), memB.Epoch())
	}
}

// TestChaosNetPRMIExactlyOnceOverFlaps drives independent PRMI calls
// through a session whose physical links keep dying. The session's
// sequence numbers and replay buffer must deliver every invocation
// exactly once: the callee-side execution counter equals the number of
// calls, and every caller sees its own argument echoed back.
func TestChaosNetPRMIExactlyOnceOverFlaps(t *testing.T) {
	const calls = 120
	pkg, err := sidl.Parse(`package p; interface I { independent double tally(in double x); }`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("I")

	lst := flappingListener(t, 15)
	cli, srv := sessionPair(t, lst)

	var executed atomic.Int64
	serveErr := make(chan error, 1)
	go func() {
		ep := prmi.NewEndpoint(iface, prmi.NewConnLink([]transport.Conn{srv}, 0), 0, 1, 1)
		ep.Handle("tally", func(in *prmi.Incoming, out *prmi.Outgoing) error {
			executed.Add(1)
			out.Return = in.Simple["x"].(float64) * 2
			return nil
		})
		serveErr <- ep.Serve()
	}()

	port := prmi.NewCallerPort(iface, prmi.NewConnLink([]transport.Conn{cli}, 0), 0, 1, prmi.Eager)
	for k := 0; k < calls; k++ {
		res, err := port.CallIndependent(0, "tally", prmi.Simple("x", float64(k)))
		if err != nil {
			t.Fatalf("call %d: %v", k, err)
		}
		if res.Return != float64(k)*2 {
			t.Fatalf("call %d: returned %v, want %v", k, res.Return, float64(k)*2)
		}
	}
	if err := port.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if got := executed.Load(); got != calls {
		t.Fatalf("callee executed %d invocations, want exactly %d", got, calls)
	}
}

// TestChaosNetBudgetExhaustionResolvesTyped kills the network for good:
// the session's redial budget drains, the circuit opens with a typed
// ErrPeerLost, ConnectPeer kills the bound ranks, the heartbeat failure
// detectors convert the silence into membership changes on both sides,
// and one fenced exchange later the source cohort (FailStrict) gets a
// typed *core.ErrRankDown while the destination cohort (FailRedistribute)
// completes with every lost element recorded in the validity bitmap.
// The test itself is the no-hang assertion: every rank resolves.
func TestChaosNetBudgetExhaustionResolvesTyped(t *testing.T) {
	const m, n, elems = 2, 3, 48
	src, err := dad.NewTemplate([]int{elems}, []dad.AxisDist{dad.BlockAxis(m)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{elems}, []dad.AxisDist{dad.CyclicAxis(n)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lst := session.WrapListener(raw, fastCfg())
	t.Cleanup(func() { lst.Close() })

	// Track the live physical conn so the outage can sever it, and give
	// the client a tiny budget so exhaustion is quick.
	var dialMu sync.Mutex
	var lastRaw transport.Conn
	cliCfg := fastCfg()
	cliCfg.MaxAttempts = 3
	cliCfg.MaxElapsed = 2 * time.Second
	dial := func(ctx context.Context) (transport.Conn, error) {
		c, err := transport.DialContext(ctx, "tcp", lst.Addr())
		if err != nil {
			return nil, err
		}
		dialMu.Lock()
		lastRaw = c
		dialMu.Unlock()
		return c, nil
	}
	accCh := make(chan transport.Conn, 1)
	go func() {
		c, err := lst.Accept()
		if err != nil {
			return
		}
		accCh <- c
	}()
	cli, err := session.NewConn(dial, cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accCh

	total := m + n
	wa := comm.NewWorld(total)
	wb := comm.NewWorld(total)
	var srcRanks, dstRanks, all []int
	for r := 0; r < total; r++ {
		all = append(all, r)
		if r < m {
			srcRanks = append(srcRanks, r)
		} else {
			dstRanks = append(dstRanks, r)
		}
	}
	pa := wa.ConnectPeer(cli, dstRanks)
	pb := wb.ConnectPeer(srv, srcRanks)
	t.Cleanup(func() { pa.Close(); pb.Close() })
	csA := wa.SharedGroup(1, all)
	csB := wb.SharedGroup(1, all)

	// Failure detectors: each local rank probes the remote cohort. The
	// heartbeat pings cross the wire through the registered codec; the
	// probers turn the post-exhaustion silence into MarkDown calls.
	memA := core.NewMembership(total)
	memB := core.NewMembership(total)
	hbCfg := core.HeartbeatConfig{Interval: 10 * time.Millisecond, MissThreshold: 3}
	var hbs []*core.Heartbeater
	for r := 0; r < m; r++ {
		hb, err := core.StartHeartbeats(csA[r], memA, hbCfg, dstRanks)
		if err != nil {
			t.Fatal(err)
		}
		hbs = append(hbs, hb)
	}
	for r := m; r < total; r++ {
		hb, err := core.StartHeartbeats(csB[r], memB, hbCfg, srcRanks)
		if err != nil {
			t.Fatal(err)
		}
		hbs = append(hbs, hb)
	}
	t.Cleanup(func() {
		for _, hb := range hbs {
			hb.Stop()
		}
	})

	srcLocals := make([][]float64, m)
	for r := 0; r < m; r++ {
		srcLocals[r] = make([]float64, src.LocalCount(r))
	}
	for i := 0; i < elems; i++ {
		r := src.OwnerOf([]int{i})
		srcLocals[r][src.LocalOffset(r, []int{i})] = fingerprint(i)
	}
	lay := redist.Layout{SrcBase: 0, DstBase: m}

	// Phase 1: a clean exchange proves the stack healthy before the kill.
	runRound := func(tag int, policyA, policyB redist.FailPolicy) (errsA []error, outsB []*redist.Outcome, errsB []error) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		errsA = make([]error, m)
		errsB = make([]error, n)
		outsB = make([]*redist.Outcome, n)
		wg.Add(total)
		for r := 0; r < m; r++ {
			go func(r int) {
				defer wg.Done()
				opts := redist.FenceOpts{Membership: memA, Policy: policyA, PollInterval: time.Millisecond}
				_, err := redist.ExchangeFenced(csA[r], s, lay, srcLocals[r], nil, tag, opts)
				mu.Lock()
				errsA[r] = err
				mu.Unlock()
			}(r)
		}
		for r := m; r < total; r++ {
			go func(r int) {
				defer wg.Done()
				opts := redist.FenceOpts{Membership: memB, Policy: policyB, PollInterval: time.Millisecond}
				dl := make([]float64, dst.LocalCount(r-m))
				out, err := redist.ExchangeFenced(csB[r], s, lay, nil, dl, tag, opts)
				mu.Lock()
				outsB[r-m] = out
				errsB[r-m] = err
				mu.Unlock()
			}(r)
		}
		wg.Wait()
		return errsA, outsB, errsB
	}
	errsA, _, errsB := runRound(0, redist.FailStrict, redist.FailStrict)
	for r, err := range append(append([]error{}, errsA...), errsB...) {
		if err != nil {
			t.Fatalf("clean round rank %d: %v", r, err)
		}
	}

	// Phase 2: the network goes away for good. Closing the listener
	// refuses every redial; severing the live conn starts the outage.
	lst.Close()
	dialMu.Lock()
	lastRaw.Close()
	dialMu.Unlock()

	// The client session must exhaust its budget and open the circuit
	// with the typed error; ConnectPeer reacts by killing bound ranks.
	select {
	case <-pa.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("client peer binding never tore down after budget exhaustion")
	}
	if err := pa.Err(); !errors.Is(err, session.ErrPeerLost) {
		t.Fatalf("client peer error = %v, want session.ErrPeerLost", err)
	}
	var pl *session.PeerLostError
	if err := pa.Err(); !errors.As(err, &pl) || pl.Attempts == 0 {
		t.Fatalf("peer-lost detail missing: %v", pa.Err())
	}
	select {
	case <-pb.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("server peer binding never tore down")
	}

	// The heartbeat detectors must declare the remote cohorts dead.
	waitDown := func(mem *core.Membership, ranks []int) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			down := 0
			for _, r := range ranks {
				if !mem.IsAlive(r) {
					down++
				}
			}
			if down == len(ranks) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("heartbeats never marked ranks %v down", ranks)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitDown(memA, dstRanks)
	waitDown(memB, srcRanks)

	// Phase 3: both policies resolve, typed, with no hang.
	errsA, outsB, errsB := runRound(10, redist.FailStrict, redist.FailRedistribute)
	for r, err := range errsA {
		var down *core.ErrRankDown
		if !errors.As(err, &down) {
			t.Fatalf("FailStrict source %d: err = %v, want *core.ErrRankDown", r, err)
		}
	}
	for r, err := range errsB {
		if err != nil {
			t.Fatalf("FailRedistribute destination %d: %v", r, err)
		}
		out := outsB[r]
		if out.Validity == nil || out.Validity.CountValid() != 0 {
			t.Fatalf("FailRedistribute destination %d: lost elements not recorded (validity %v)", r, out.Validity)
		}
		if len(out.Down) == 0 {
			t.Fatalf("FailRedistribute destination %d: outcome lists no dead ranks", r)
		}
	}
}
