package transport

import (
	"bytes"
	"net"
	"testing"

	"mxn/internal/bufpool"
)

// testVectored drives the SendV contract on any pair: a vectored send is
// received as the single concatenated message, regardless of segment
// boundaries, interleaved with plain sends on the same conn.
func testVectored(t *testing.T, a, b Conn) {
	t.Helper()
	vw, ok := a.(VectorWriter)
	if !ok {
		t.Fatalf("%T does not implement VectorWriter", a)
	}
	p1, p2, p3 := []byte("alpha-"), []byte("beta-"), []byte("gamma")
	if err := vw.SendV(net.Buffers{p1, nil, p2, p3}); err != nil {
		t.Fatalf("SendV: %v", err)
	}
	if err := a.Send([]byte("plain")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := vw.SendV(net.Buffers{[]byte("solo")}); err != nil {
		t.Fatalf("SendV single: %v", err)
	}
	for _, want := range []string{"alpha-beta-gamma", "plain", "solo"} {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if string(got) != want {
			t.Fatalf("Recv = %q, want %q", got, want)
		}
	}
}

// testOwned drives the SendOwned contract: head+payload arrive as one
// message and the pooled payload is returned exactly once.
func testOwned(t *testing.T, a, b Conn) {
	t.Helper()
	os, ok := a.(OwnedSender)
	if !ok {
		t.Fatalf("%T does not implement OwnedSender", a)
	}
	baseline := bufpool.Outstanding()
	payload := bufpool.Get(96)
	for i := range payload {
		payload[i] = byte(i)
	}
	want := append([]byte("head|"), payload...)
	if err := os.SendOwned([]byte("head|"), payload); err != nil {
		t.Fatalf("SendOwned: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Recv = %q, want %q", got, want)
	}
	if d := bufpool.Outstanding() - baseline; d > 0 {
		t.Fatalf("payload not returned to pool: %+d outstanding", d)
	}
}

func TestPipeSendV(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	testVectored(t, a, b)
}

func TestPipeSendOwned(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	testOwned(t, a, b)
}

func TestTCPSendV(t *testing.T) {
	cli, srv := tcpPair(t)
	defer cli.Close()
	defer srv.Close()
	testVectored(t, cli, srv)
}

func TestTCPSendOwned(t *testing.T) {
	cli, srv := tcpPair(t)
	defer cli.Close()
	defer srv.Close()
	testOwned(t, cli, srv)
}

// TestSendOwnedClosedReturnsPayload: ownership transfers even when the
// send is refused — the conn must Put the payload before reporting the
// error, on both transports.
func TestSendOwnedClosedReturnsPayload(t *testing.T) {
	run := func(t *testing.T, c Conn) {
		c.Close()
		baseline := bufpool.Outstanding()
		if err := c.(OwnedSender).SendOwned([]byte("h"), bufpool.Get(64)); err == nil {
			t.Fatal("SendOwned on closed conn succeeded")
		}
		if d := bufpool.Outstanding() - baseline; d > 0 {
			t.Fatalf("payload leaked on refused send: %+d outstanding", d)
		}
	}
	t.Run("pipe", func(t *testing.T) {
		a, b := Pipe()
		defer b.Close()
		run(t, a)
	})
	t.Run("tcp", func(t *testing.T) {
		cli, srv := tcpPair(t)
		defer srv.Close()
		run(t, cli)
	})
}

// TestSendVDoesNotRetainSegments: like Send, SendV must not let the
// receiver observe later mutations of the caller's segments (pipe copies;
// TCP serializes before returning... the frame hits the kernel during the
// call, so post-call mutation is safe there too).
func TestSendVDoesNotRetainSegments(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	seg := []byte("before")
	if err := a.(VectorWriter).SendV(net.Buffers{seg}); err != nil {
		t.Fatal(err)
	}
	copy(seg, "AFTER!")
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "before" {
		t.Fatalf("receiver observed sender mutation: %q", got)
	}
}
