package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func retryTestPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 10,
		MaxElapsed:  10 * time.Second,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	}
}

// TestDialRetryRacesListenerStartup is the motivating case: the dialer
// starts before the listener exists and must win anyway.
func TestDialRetryRacesListenerStartup(t *testing.T) {
	// Reserve a port, then free it so the first dials are refused.
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := nl.Addr().String()
	nl.Close()

	connected := make(chan error, 1)
	go func() {
		c, err := DialRetry(context.Background(), "tcp", addr, retryTestPolicy())
		if err == nil {
			c.Send([]byte("late but fine"))
			c.Close()
		}
		connected <- err
	}()

	time.Sleep(30 * time.Millisecond) // let a few attempts fail
	l, err := Listen("tcp", addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	acceptErr := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			_, err = c.Recv()
			c.Close()
		}
		acceptErr <- err
	}()

	for _, ch := range []chan error{connected, acceptErr} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("DialRetry did not connect once the listener appeared")
		}
	}
}

func TestDialRetryExhaustsAttempts(t *testing.T) {
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := nl.Addr().String()
	nl.Close()

	p := retryTestPolicy()
	p.MaxAttempts = 3
	start := time.Now()
	_, err = DialRetry(context.Background(), "tcp", addr, p)
	if err == nil {
		t.Fatal("DialRetry succeeded against a dead address")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("DialRetry took %v for 3 short attempts", time.Since(start))
	}
}

func TestDialRetryHonorsContextCancel(t *testing.T) {
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := nl.Addr().String()
	nl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := DialRetry(ctx, "tcp", addr, RetryPolicy{
			MaxAttempts: 1000, MaxElapsed: time.Hour,
			BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DialRetry after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DialRetry ignored context cancellation")
	}
}
