// Package transport provides message-oriented connections between
// component framework instances. Two implementations are included: an
// in-memory "inproc" transport for co-located frameworks (the out-of-band
// channel between paired M×N components in Figure 3 of the paper), and a
// TCP transport (stdlib net) for genuinely distributed frameworks.
//
// Both expose the same contract: a Conn carries whole messages ([]byte
// frames) reliably and in order in each direction, full-duplex.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"mxn/internal/wire"
)

// ErrClosed is returned by operations on a closed Conn or Listener.
var ErrClosed = errors.New("transport: closed")

// Conn is a reliable, ordered, full-duplex message connection.
type Conn interface {
	// Send transmits one message. It may block for flow control.
	Send(msg []byte) error
	// Recv blocks until the next message arrives.
	Recv() ([]byte, error)
	// Close releases the connection. Pending and future operations on
	// either end fail with ErrClosed (or io errors for TCP).
	Close() error
}

// Listener accepts incoming connections at an address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the address peers should Dial.
	Addr() string
}

// Listen opens a listener. network is "inproc" or "tcp". For inproc the
// address is an arbitrary name unique within the process; for tcp it is a
// host:port (use "127.0.0.1:0" to pick a free port, then read Addr).
func Listen(network, addr string) (Listener, error) {
	switch network {
	case "inproc":
		return listenInproc(addr)
	case "tcp":
		nl, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &tcpListener{nl: nl}, nil
	default:
		return nil, fmt.Errorf("transport: unknown network %q", network)
	}
}

// Dial connects to a listener.
func Dial(network, addr string) (Conn, error) {
	switch network {
	case "inproc":
		return dialInproc(addr)
	case "tcp":
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return newTCPConn(nc), nil
	default:
		return nil, fmt.Errorf("transport: unknown network %q", network)
	}
}

// Pipe returns a connected pair of in-memory Conns, useful for tests and
// for wiring paired M×N components inside one process without naming an
// address.
func Pipe() (Conn, Conn) {
	a2b := make(chan []byte, pipeDepth)
	b2a := make(chan []byte, pipeDepth)
	closed := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(closed) }) }
	a := &chanConn{out: a2b, in: b2a, closed: closed, close: closeFn}
	b := &chanConn{out: b2a, in: a2b, closed: closed, close: closeFn}
	return a, b
}

// pipeDepth is the per-direction buffering of inproc connections. Senders
// block when the peer falls this many messages behind, providing the same
// back-pressure a TCP socket buffer would.
const pipeDepth = 64

// chanConn is a channel-backed Conn half.
type chanConn struct {
	out    chan<- []byte
	in     <-chan []byte
	closed chan struct{}
	close  func()
}

func (c *chanConn) Send(msg []byte) error {
	// Copy so the caller may reuse its buffer, matching TCP semantics.
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case <-c.closed:
		return ErrClosed
	case c.out <- cp:
		return nil
	}
}

func (c *chanConn) Recv() ([]byte, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.closed:
		// Drain anything already queued before reporting closure, so a
		// close racing the last message does not drop it.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *chanConn) Close() error {
	c.close()
	return nil
}

// inproc listener registry.
var inprocMu sync.Mutex
var inprocListeners = map[string]*inprocListener{}

type inprocListener struct {
	addr    string
	backlog chan Conn
	closed  chan struct{}
	once    sync.Once
}

func listenInproc(addr string) (Listener, error) {
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if _, ok := inprocListeners[addr]; ok {
		return nil, fmt.Errorf("transport: inproc address %q already in use", addr)
	}
	l := &inprocListener{addr: addr, backlog: make(chan Conn, 16), closed: make(chan struct{})}
	inprocListeners[addr] = l
	return l, nil
}

func dialInproc(addr string) (Conn, error) {
	inprocMu.Lock()
	l, ok := inprocListeners[addr]
	inprocMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no inproc listener at %q", addr)
	}
	a, b := Pipe()
	select {
	case l.backlog <- b:
		return a, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		inprocMu.Lock()
		delete(inprocListeners, l.addr)
		inprocMu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// tcpConn frames messages over a net.Conn using the wire framing.
type tcpConn struct {
	nc   net.Conn
	sMu  sync.Mutex // serializes writers
	rMu  sync.Mutex // serializes readers
	once sync.Once
}

func newTCPConn(nc net.Conn) *tcpConn { return &tcpConn{nc: nc} }

func (c *tcpConn) Send(msg []byte) error {
	c.sMu.Lock()
	defer c.sMu.Unlock()
	return wire.WriteFrame(c.nc, msg)
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.rMu.Lock()
	defer c.rMu.Unlock()
	return wire.ReadFrame(c.nc)
}

func (c *tcpConn) Close() error {
	var err error
	c.once.Do(func() { err = c.nc.Close() })
	return err
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }
