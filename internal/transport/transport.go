// Package transport provides message-oriented connections between
// component framework instances. Two implementations are included: an
// in-memory "inproc" transport for co-located frameworks (the out-of-band
// channel between paired M×N components in Figure 3 of the paper), and a
// TCP transport (stdlib net) for genuinely distributed frameworks.
//
// Both expose the same contract: a Conn carries whole messages ([]byte
// frames) reliably and in order in each direction, full-duplex.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mxn/internal/bufpool"
	"mxn/internal/obs"
	"mxn/internal/wire"
)

// Connection-level instruments. Frame and byte counts for TCP conns are
// accounted by internal/wire (wire.frames_*, wire.bytes_*); this layer
// adds dial/accept activity, inproc message traffic, deadline expiries and
// the number of open TCP conns.
var (
	mDialsTCP      = obs.Default().Counter("transport.dials_tcp")
	mDialsInproc   = obs.Default().Counter("transport.dials_inproc")
	mAccepts       = obs.Default().Counter("transport.accepts")
	mDeadlineHits  = obs.Default().Counter("transport.deadline_hits")
	mInprocSent    = obs.Default().Counter("transport.inproc_msgs_sent")
	mInprocRecv    = obs.Default().Counter("transport.inproc_msgs_recv")
	mInprocBytes   = obs.Default().Counter("transport.inproc_bytes_sent")
	mTCPConnsOpen  = obs.Default().Gauge("transport.tcp_conns_open")
	mInprocPending = obs.Default().Gauge("transport.inproc_msgs_inflight")
)

// ErrClosed is returned by operations on a closed Conn or Listener.
var ErrClosed = errors.New("transport: closed")

// ErrTimeout is returned (wrapped) when a context deadline expires inside
// SendContext, RecvContext or DialContext. It is distinct from ErrClosed so
// callers can tell a slow peer from a dead link and decide whether to retry.
var ErrTimeout = errors.New("transport: timeout")

// VectorWriter is implemented by Conns whose send path can transmit one
// message assembled from several byte segments without flattening them
// first. The TCP transport maps SendV onto a single writev via
// net.Buffers.WriteTo; transports without scatter-gather support either
// flatten internally (one copy, at the transport boundary) or simply do
// not implement the interface, in which case callers fall back to Send
// with a flattened buffer. SendV never retains segs or its segments past
// the call. The parameter is a slice (not variadic) so hot callers can
// reuse a preallocated vector without the call escaping it to the heap.
type VectorWriter interface {
	SendV(segs net.Buffers) error
}

// OwnedSender is implemented by Conns that can take ownership of a
// pooled payload buffer. SendOwned transmits one message whose bytes are
// head followed by payload; head is only read during the call, while
// ownership of payload (which must be a bufpool buffer) transfers to the
// conn unconditionally — success or error — and the conn returns it to
// the pool once the bytes can no longer be needed. For plain transports
// that is immediately after the physical write; for the session layer it
// is after the peer acknowledges the frame (or the session is torn
// down). This is the hook that lets the redistribution engine lend its
// pack buffer to the wire instead of having every layer re-copy it.
type OwnedSender interface {
	SendOwned(head, payload []byte) error
}

// Conn is a reliable, ordered, full-duplex message connection.
type Conn interface {
	// Send transmits one message. It may block for flow control.
	Send(msg []byte) error
	// Recv blocks until the next message arrives.
	Recv() ([]byte, error)
	// SendContext is Send bounded by ctx: expiry reports ErrTimeout
	// (wrapped), cancellation reports ctx.Err(). A TCP conn abandoned
	// mid-frame by an expired deadline is poisoned for further framed
	// traffic and should be closed.
	SendContext(ctx context.Context, msg []byte) error
	// RecvContext is Recv bounded by ctx, with the same error contract as
	// SendContext.
	RecvContext(ctx context.Context) ([]byte, error)
	// Close releases the connection. Pending and future operations on
	// either end fail with ErrClosed (or io errors for TCP).
	Close() error
}

// ctxErr maps a finished context to the transport error contract.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); errors.Is(err, context.DeadlineExceeded) {
		mDeadlineHits.Inc()
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return ctx.Err()
}

// mapNetErr rewrites net-level timeouts into the transport error contract.
func mapNetErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		mDeadlineHits.Inc()
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// Listener accepts incoming connections at an address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the address peers should Dial.
	Addr() string
}

// Listen opens a listener. network is "inproc" or "tcp". For inproc the
// address is an arbitrary name unique within the process; for tcp it is a
// host:port (use "127.0.0.1:0" to pick a free port, then read Addr).
func Listen(network, addr string) (Listener, error) {
	switch network {
	case "inproc":
		return listenInproc(addr)
	case "tcp":
		nl, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &tcpListener{nl: nl}, nil
	default:
		return nil, fmt.Errorf("transport: unknown network %q", network)
	}
}

// Dial connects to a listener.
func Dial(network, addr string) (Conn, error) {
	return DialContext(context.Background(), network, addr)
}

// DialContext connects to a listener, bounded by ctx. Deadline expiry
// reports ErrTimeout (wrapped).
func DialContext(ctx context.Context, network, addr string) (Conn, error) {
	switch network {
	case "inproc":
		mDialsInproc.Inc()
		return dialInproc(ctx, addr)
	case "tcp":
		var d net.Dialer
		mDialsTCP.Inc()
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, mapNetErr(err)
		}
		return newTCPConn(nc), nil
	default:
		return nil, fmt.Errorf("transport: unknown network %q", network)
	}
}

// Pipe returns a connected pair of in-memory Conns, useful for tests and
// for wiring paired M×N components inside one process without naming an
// address.
func Pipe() (Conn, Conn) {
	a2b := make(chan []byte, pipeDepth)
	b2a := make(chan []byte, pipeDepth)
	closed := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(closed) }) }
	a := &chanConn{out: a2b, in: b2a, closed: closed, close: closeFn}
	b := &chanConn{out: b2a, in: a2b, closed: closed, close: closeFn}
	return a, b
}

// pipeDepth is the per-direction buffering of inproc connections. Senders
// block when the peer falls this many messages behind, providing the same
// back-pressure a TCP socket buffer would.
const pipeDepth = 64

// chanConn is a channel-backed Conn half.
type chanConn struct {
	out    chan<- []byte
	in     <-chan []byte
	closed chan struct{}
	close  func()
}

func (c *chanConn) Send(msg []byte) error {
	return c.SendContext(context.Background(), msg)
}

func (c *chanConn) SendContext(ctx context.Context, msg []byte) error {
	// Check closure first: with buffer space free the main select would
	// otherwise pick randomly between the send and the closed arm, making
	// Send on a closed pipe nondeterministic.
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	// Copy so the caller may reuse its buffer, matching TCP semantics.
	cp := make([]byte, len(msg))
	copy(cp, msg)
	return c.enqueue(ctx, cp)
}

// enqueue delivers an already-private buffer to the peer.
func (c *chanConn) enqueue(ctx context.Context, cp []byte) error {
	select {
	case <-c.closed:
		return ErrClosed
	case c.out <- cp:
		mInprocSent.Inc()
		mInprocBytes.Add(uint64(len(cp)))
		mInprocPending.Add(1)
		return nil
	case <-ctx.Done():
		return ctxErr(ctx)
	}
}

// SendV implements VectorWriter by flattening the segments once — the
// same single copy Send makes — and enqueueing the private buffer.
func (c *chanConn) SendV(segs net.Buffers) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	cp := make([]byte, 0, total)
	for _, s := range segs {
		cp = append(cp, s...)
	}
	return c.enqueue(context.Background(), cp)
}

// SendOwned implements OwnedSender: the payload is flattened with the
// head into the queued message and returned to the pool immediately — a
// pipe delivers by reference, so the bytes are private after one copy.
func (c *chanConn) SendOwned(head, payload []byte) error {
	select {
	case <-c.closed:
		bufpool.Put(payload)
		return ErrClosed
	default:
	}
	cp := make([]byte, 0, len(head)+len(payload))
	cp = append(cp, head...)
	cp = append(cp, payload...)
	bufpool.Put(payload)
	return c.enqueue(context.Background(), cp)
}

func (c *chanConn) Recv() ([]byte, error) {
	return c.RecvContext(context.Background())
}

func (c *chanConn) RecvContext(ctx context.Context) ([]byte, error) {
	select {
	case m := <-c.in:
		mInprocRecv.Inc()
		mInprocPending.Add(-1)
		return m, nil
	case <-c.closed:
		// Drain anything already queued before reporting closure, so a
		// close racing the last message does not drop it.
		select {
		case m := <-c.in:
			mInprocRecv.Inc()
			mInprocPending.Add(-1)
			return m, nil
		default:
			return nil, ErrClosed
		}
	case <-ctx.Done():
		return nil, ctxErr(ctx)
	}
}

func (c *chanConn) Close() error {
	c.close()
	return nil
}

// inproc listener registry.
var inprocMu sync.Mutex
var inprocListeners = map[string]*inprocListener{}

type inprocListener struct {
	addr    string
	backlog chan Conn
	closed  chan struct{}
	once    sync.Once
}

func listenInproc(addr string) (Listener, error) {
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if _, ok := inprocListeners[addr]; ok {
		return nil, fmt.Errorf("transport: inproc address %q already in use", addr)
	}
	l := &inprocListener{addr: addr, backlog: make(chan Conn, 16), closed: make(chan struct{})}
	inprocListeners[addr] = l
	return l, nil
}

func dialInproc(ctx context.Context, addr string) (Conn, error) {
	inprocMu.Lock()
	l, ok := inprocListeners[addr]
	inprocMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no inproc listener at %q", addr)
	}
	a, b := Pipe()
	select {
	case l.backlog <- b:
		return a, nil
	case <-l.closed:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctxErr(ctx)
	}
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		mAccepts.Inc()
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		inprocMu.Lock()
		delete(inprocListeners, l.addr)
		inprocMu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// tcpConn frames messages over a net.Conn using the wire framing.
type tcpConn struct {
	nc   net.Conn
	sMu  sync.Mutex  // serializes writers
	rMu  sync.Mutex  // serializes readers
	iov  net.Buffers // SendOwned scratch, guarded by sMu
	once sync.Once
}

func newTCPConn(nc net.Conn) *tcpConn {
	mTCPConnsOpen.Add(1)
	return &tcpConn{nc: nc}
}

func (c *tcpConn) Send(msg []byte) error {
	c.sMu.Lock()
	defer c.sMu.Unlock()
	return wire.WriteFrame(c.nc, msg)
}

// SendV implements VectorWriter: the frame header and every segment go
// to the socket in one writev (net.Buffers.WriteTo), so no payload byte
// is copied on the way out.
func (c *tcpConn) SendV(segs net.Buffers) error {
	c.sMu.Lock()
	defer c.sMu.Unlock()
	return wire.WriteFrameV(c.nc, segs)
}

// SendOwned implements OwnedSender: the payload rides the scatter-gather
// path and is released to the pool as soon as the write returns, since
// TCP has consumed the bytes by then.
func (c *tcpConn) SendOwned(head, payload []byte) error {
	c.sMu.Lock()
	c.iov = append(c.iov[:0], head, payload)
	err := wire.WriteFrameV(c.nc, c.iov)
	c.iov[0], c.iov[1] = nil, nil
	c.sMu.Unlock()
	bufpool.Put(payload)
	return err
}

func (c *tcpConn) SendContext(ctx context.Context, msg []byte) error {
	c.sMu.Lock()
	defer c.sMu.Unlock()
	if err := ctx.Err(); err != nil {
		return ctxErr(ctx)
	}
	defer c.armDeadline(ctx, c.nc.SetWriteDeadline)()
	return finishCtx(ctx, wire.WriteFrame(c.nc, msg))
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.rMu.Lock()
	defer c.rMu.Unlock()
	return wire.ReadFrame(c.nc)
}

func (c *tcpConn) RecvContext(ctx context.Context) ([]byte, error) {
	c.rMu.Lock()
	defer c.rMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(ctx)
	}
	defer c.armDeadline(ctx, c.nc.SetReadDeadline)()
	msg, err := wire.ReadFrame(c.nc)
	return msg, finishCtx(ctx, err)
}

// finishCtx resolves the error of a deadline-bounded socket operation: a
// finished context takes precedence (an AfterFunc-forced deadline shows up
// as a net timeout even when the cause was cancellation, not expiry).
func finishCtx(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return ctxErr(ctx)
	}
	return mapNetErr(err)
}

// armDeadline applies ctx's deadline to one direction of the socket and
// registers cancellation to abort an in-flight operation. The returned
// func clears both; it must run before the direction's mutex is released.
// An operation abandoned mid-frame leaves the stream unframeable — callers
// that time out should close the conn and redial.
func (c *tcpConn) armDeadline(ctx context.Context, set func(time.Time) error) func() {
	if dl, ok := ctx.Deadline(); ok {
		set(dl)
	}
	// The AfterFunc callback can run concurrently with the cleanup below
	// (stop() returns false once the callback has started); without the
	// flag its forced past-deadline could land after the reset and stick
	// to the socket, failing every later operation instantly.
	var mu sync.Mutex
	done := false
	stop := context.AfterFunc(ctx, func() {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			// Force any blocked read/write to return immediately.
			set(time.Unix(1, 0))
		}
	})
	return func() {
		stop()
		mu.Lock()
		defer mu.Unlock()
		done = true
		set(time.Time{})
	}
}

func (c *tcpConn) Close() error {
	var err error
	c.once.Do(func() {
		mTCPConnsOpen.Add(-1)
		err = c.nc.Close()
	})
	return err
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	mAccepts.Inc()
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }
