package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testConnPair(t *testing.T, a, b Conn) {
	t.Helper()
	// Both directions, ordering preserved.
	const n = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send([]byte(fmt.Sprintf("a%d", i))); err != nil {
				t.Errorf("a send: %v", err)
				return
			}
		}
		for i := 0; i < n; i++ {
			m, err := a.Recv()
			if err != nil {
				t.Errorf("a recv: %v", err)
				return
			}
			if want := fmt.Sprintf("b%d", i); string(m) != want {
				t.Errorf("a got %q want %q", m, want)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := b.Send([]byte(fmt.Sprintf("b%d", i))); err != nil {
				t.Errorf("b send: %v", err)
				return
			}
		}
		for i := 0; i < n; i++ {
			m, err := b.Recv()
			if err != nil {
				t.Errorf("b recv: %v", err)
				return
			}
			if want := fmt.Sprintf("a%d", i); string(m) != want {
				t.Errorf("b got %q want %q", m, want)
			}
		}
	}()
	wg.Wait()
}

func TestPipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	testConnPair(t, a, b)
}

func TestPipeSenderBufferReuse(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	buf := []byte("first")
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXX") // mutate after send
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m, []byte("first")) {
		t.Errorf("message aliased sender buffer: %q", m)
	}
}

func TestInproc(t *testing.T) {
	l, err := Listen("inproc", "test-ep")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() != "test-ep" {
		t.Errorf("addr = %q", l.Addr())
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var srv Conn
	go func() {
		defer wg.Done()
		srv, err = l.Accept()
	}()
	cli, derr := Dial("inproc", "test-ep")
	if derr != nil {
		t.Fatal(derr)
	}
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	testConnPair(t, cli, srv)
	cli.Close()
}

func TestInprocAddressConflictAndRelease(t *testing.T) {
	l, err := Listen("inproc", "conflict")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen("inproc", "conflict"); err == nil {
		t.Error("duplicate inproc listen succeeded")
	}
	l.Close()
	// Address is free again after close.
	l2, err := Listen("inproc", "conflict")
	if err != nil {
		t.Errorf("relisten after close: %v", err)
	} else {
		l2.Close()
	}
}

func TestInprocDialNoListener(t *testing.T) {
	if _, err := Dial("inproc", "nobody-home"); err == nil {
		t.Error("dial to missing listener succeeded")
	}
}

func TestTCP(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var srv Conn
	var aerr error
	go func() {
		defer wg.Done()
		srv, aerr = l.Accept()
	}()
	cli, err := Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if aerr != nil {
		t.Fatal(aerr)
	}
	testConnPair(t, cli, srv)
	cli.Close()
	srv.Close()
}

func TestTCPLargeMessage(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		srv, err := l.Accept()
		if err != nil {
			return
		}
		m, err := srv.Recv()
		if err == nil {
			srv.Send(m) // echo
		}
		srv.Close()
	}()
	cli, err := Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := cli.Send(big); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("large message corrupted in transit")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	if err := <-done; err != ErrClosed {
		t.Errorf("recv after close: %v, want ErrClosed", err)
	}
}

func TestCloseDoesNotDropQueued(t *testing.T) {
	a, b := Pipe()
	if err := a.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	m, err := b.Recv()
	if err != nil || string(m) != "last words" {
		t.Errorf("queued message lost: %q %v", m, err)
	}
	if _, err := b.Recv(); err != ErrClosed {
		t.Errorf("second recv: %v", err)
	}
}

func TestUnknownNetwork(t *testing.T) {
	if _, err := Listen("udp", "x"); err == nil {
		t.Error("Listen(udp) succeeded")
	}
	if _, err := Dial("carrier-pigeon", "x"); err == nil {
		t.Error("Dial(carrier-pigeon) succeeded")
	}
}

func TestRecvContextTimeout(t *testing.T) {
	for _, tc := range []struct {
		name string
		pair func(t *testing.T) (Conn, Conn)
	}{
		{"pipe", func(t *testing.T) (Conn, Conn) { a, b := Pipe(); return a, b }},
		{"tcp", func(t *testing.T) (Conn, Conn) { return tcpPair(t) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.pair(t)
			defer a.Close()
			defer b.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			_, err := b.RecvContext(ctx)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("recv on silent conn: %v, want ErrTimeout", err)
			}
		})
	}
}

func TestRecvContextCancel(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.RecvContext(ctx)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("recv after cancel: %v, want context.Canceled", err)
	}
}

func TestRecvContextDelivers(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.SendContext(ctx, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	m, err := b.RecvContext(ctx)
	if err != nil || string(m) != "hi" {
		t.Fatalf("recv: %q, %v", m, err)
	}
}

func TestSendContextTimeoutWhenFull(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	_ = b
	// Fill the pipe's buffered direction, then the next send must block
	// and time out.
	for i := 0; i < pipeDepth; i++ {
		if err := a.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := a.SendContext(ctx, []byte("overflow")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("send on full pipe: %v, want ErrTimeout", err)
	}
}

func TestDialContextExpired(t *testing.T) {
	// An already-expired context must fail the dial regardless of how the
	// local network treats the address.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	l, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := DialContext(ctx, "tcp", l.Addr()); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dial with expired context: %v, want ErrTimeout", err)
	}
}

func TestTCPRecvAfterTimeoutThenClose(t *testing.T) {
	cli, srv := tcpPair(t)
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cli.RecvContext(ctx); !errorsIsTimeout(err) {
		t.Fatalf("recv: %v, want ErrTimeout", err)
	}
	// The conn survives the timeout for a retry when no frame was cut.
	go srv.Send([]byte("late"))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	m, err := cli.RecvContext(ctx2)
	if err != nil || string(m) != "late" {
		t.Fatalf("recv after timeout: %q, %v", m, err)
	}
	cli.Close()
}

func errorsIsTimeout(err error) bool { return errors.Is(err, ErrTimeout) }

// tcpPair returns a connected client/server TCP conn pair on loopback.
func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	l, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	cli, err := Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return cli, r.c
}
