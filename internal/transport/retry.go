package transport

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"mxn/internal/obs"
)

// Dial-retry instruments, published via expvar wherever the default
// registry is mounted (obs.PublishExpvar).
var (
	mDialRetryAttempts = obs.Default().Counter("transport.dial_retry_attempts")
	mDialRetryFails    = obs.Default().Counter("transport.dial_retry_failures")
	mDialRetryOK       = obs.Default().Counter("transport.dial_retry_connects")
)

// RetryPolicy shapes DialRetry's jittered exponential backoff. The zero
// value selects the defaults noted on each field.
type RetryPolicy struct {
	// MaxAttempts bounds the number of dials (default 8).
	MaxAttempts int
	// MaxElapsed bounds the total wall-clock spent retrying (default 30s).
	MaxElapsed time.Duration
	// BaseBackoff is the first inter-attempt delay; it doubles per
	// attempt, jittered to [d/2, d], up to MaxBackoff (defaults 20ms, 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.MaxElapsed <= 0 {
		p.MaxElapsed = 30 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 20 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// DialRetry connects to a listener, retrying transient failures with
// jittered exponential backoff. A plain Dial fails hard on the first
// refusal, which races the peer's startup; DialRetry absorbs that race.
// It stops early when ctx is done (reporting ctx's error per the
// transport contract) and otherwise returns the last dial error once the
// policy's attempt or elapsed budget is spent.
func DialRetry(ctx context.Context, network, addr string, policy RetryPolicy) (Conn, error) {
	p := policy.withDefaults()
	start := time.Now()
	backoff := p.BaseBackoff
	var last error
	for attempt := 1; ; attempt++ {
		if attempt > p.MaxAttempts {
			mDialRetryFails.Inc()
			return nil, fmt.Errorf("transport: dial %s %s failed after %d attempts: %w",
				network, addr, p.MaxAttempts, last)
		}
		if attempt > 1 {
			if elapsed := time.Since(start); elapsed > p.MaxElapsed {
				mDialRetryFails.Inc()
				return nil, fmt.Errorf("transport: dial %s %s failed after %v: %w",
					network, addr, elapsed.Round(time.Millisecond), last)
			}
			// Jitter to [backoff/2, backoff] so many dialers racing the
			// same startup don't re-collide in lockstep.
			half := int64(backoff) / 2
			select {
			case <-time.After(time.Duration(half + rand.Int63n(half+1))):
			case <-ctx.Done():
				return nil, ctxErr(ctx)
			}
			if backoff *= 2; backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
		}
		mDialRetryAttempts.Inc()
		c, err := DialContext(ctx, network, addr)
		if err == nil {
			mDialRetryOK.Inc()
			return c, nil
		}
		if ctx.Err() != nil {
			return nil, ctxErr(ctx)
		}
		last = err
	}
}
