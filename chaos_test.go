package mxn

// Chaos soak tests: the survivability layer end to end. A rank is crashed
// in the middle of coupled redistribution + PRMI traffic and the survivors
// must either re-plan and complete (FailRedistribute) or fail with the
// typed rank-down error (FailStrict) — never hang, never panic, and never
// execute a non-idempotent method twice. Run via `make chaos` (and under
// -race in CI); every fault decision is seed-driven and replayable.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/faultconn"
	"mxn/internal/prmi"
	"mxn/internal/redist"
	"mxn/internal/schedule"
	"mxn/internal/sidl"
	"mxn/internal/transport"
)

// chaosFingerprint is the per-element payload: recognizable and unique per
// global index so delivery errors are attributable.
func chaosFingerprint(g int) float64 { return float64(g) + 0.5 }

// TestChaosRedistRankCrash stands up an 8-rank world (4 sources, 4
// destinations, block -> cyclic so every destination depends on every
// source), starts heartbeats, and crashes one source mid-transfer. Under
// FailRedistribute the survivors re-plan and complete with the lost
// elements recorded in the validity bitmap; under FailStrict every
// destination gets *core.ErrRankDown. Either way BarrierTimeout afterwards
// names exactly the crashed rank.
func TestChaosRedistRankCrash(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy redist.FailPolicy
	}{
		{"redistribute", redist.FailRedistribute},
		{"strict", redist.FailStrict},
	} {
		t.Run(tc.name, func(t *testing.T) { runChaosRedist(t, tc.policy) })
	}
}

func runChaosRedist(t *testing.T, policy redist.FailPolicy) {
	const (
		nSrc, nDst = 4, 4
		nElems     = 24
		victim     = 1 // source rank 1 == group rank 1
	)
	src, err := dad.NewTemplate([]int{nElems}, []dad.AxisDist{dad.BlockAxis(nSrc)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{nElems}, []dad.AxisDist{dad.CyclicAxis(nDst)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	cache := schedule.NewCache()
	if _, err := cache.Get(src, dst); err != nil {
		t.Fatal(err)
	}
	desc, err := dad.NewDescriptor("chaos", dad.Float64, dad.ReadWrite, dst)
	if err != nil {
		t.Fatal(err)
	}

	srcLocals := make([][]float64, nSrc)
	for r := 0; r < nSrc; r++ {
		srcLocals[r] = make([]float64, src.LocalCount(r))
	}
	for g := 0; g < nElems; g++ {
		owner := src.OwnerOf([]int{g})
		srcLocals[owner][src.LocalOffset(owner, []int{g})] = chaosFingerprint(g)
	}

	n := nSrc + nDst
	w := comm.NewWorld(n)
	cs := w.Comms()
	mem := core.NewMembership(n)
	cfg := core.HeartbeatConfig{Interval: 10 * time.Millisecond, MissThreshold: 8}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}

	dstLocals := make([][]float64, nDst)
	outs := make([]*redist.Outcome, nDst)
	errs := make([]error, nDst)
	missings := make([][]int, n)
	berrs := make([]error, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(r int, c *comm.Comm) {
			defer wg.Done()
			hb, hbErr := core.StartHeartbeats(c, mem, cfg, peers)
			if hbErr != nil {
				panic(hbErr)
			}
			defer hb.Stop()
			if r == victim {
				// Crash after the cohort is mid-transfer: the victim's
				// data never leaves, and its heartbeats go silent.
				time.Sleep(3 * cfg.Interval)
				w.Kill(victim)
				return
			}
			fo := redist.FenceOpts{
				Membership:   mem,
				Policy:       policy,
				PollInterval: 2 * time.Millisecond,
				Cache:        cache,
				Desc:         desc,
			}
			lay := redist.Layout{SrcBase: 0, DstBase: nSrc}
			var sl, dl []float64
			if r < nSrc {
				sl = srcLocals[r]
			} else {
				dl = make([]float64, dst.LocalCount(r-nSrc))
			}
			out, xerr := redist.ExchangeFenced(c, s, lay, sl, dl, 0, fo)
			if dl != nil {
				mu.Lock()
				dstLocals[r-nSrc] = dl
				outs[r-nSrc] = out
				errs[r-nSrc] = xerr
				mu.Unlock()
			} else if xerr != nil {
				t.Errorf("source rank %d: %v", r, xerr)
			}
			// Satellite contract: the post-transfer barrier names exactly
			// the ranks that never arrived.
			missing, berr := c.BarrierTimeout(300 * time.Millisecond)
			mu.Lock()
			missings[r] = missing
			berrs[r] = berr
			mu.Unlock()
		}(r, cs[r])
	}
	wg.Wait()

	if mem.IsAlive(victim) {
		t.Fatal("heartbeats never detected the crashed rank")
	}
	if mem.Epoch() < 2 {
		t.Fatalf("membership epoch = %d after a death", mem.Epoch())
	}
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		var bte *comm.BarrierTimeoutError
		if !errors.As(berrs[r], &bte) {
			t.Fatalf("rank %d: barrier error = %v, want *comm.BarrierTimeoutError", r, berrs[r])
		}
		if len(missings[r]) != 1 || missings[r][0] != victim {
			t.Fatalf("rank %d: barrier missing = %v, want [%d]", r, missings[r], victim)
		}
	}

	switch policy {
	case redist.FailRedistribute:
		for j := 0; j < nDst; j++ {
			if errs[j] != nil {
				t.Fatalf("dst rank %d: re-plan should complete, got %v", j, errs[j])
			}
			out := outs[j]
			if len(out.Down) != 1 || out.Down[0] != victim {
				t.Errorf("dst rank %d: Down = %v, want [%d]", j, out.Down, victim)
			}
			if out.Replanned == nil {
				t.Errorf("dst rank %d: no restricted schedule reported", j)
			}
			if v := desc.Validity(j); v == nil {
				t.Errorf("dst rank %d: descriptor carries no validity bitmap", j)
			}
		}
		// Per element: victim-sourced entries invalid, everything else
		// delivered intact and marked valid.
		for g := 0; g < nElems; g++ {
			j := dst.OwnerOf([]int{g})
			off := dst.LocalOffset(j, []int{g})
			if src.OwnerOf([]int{g}) == victim {
				if outs[j].Validity.Valid(off) {
					t.Errorf("global %d: lost element marked valid on dst %d", g, j)
				}
			} else {
				if !outs[j].Validity.Valid(off) {
					t.Errorf("global %d: delivered element marked invalid on dst %d", g, j)
				}
				if dstLocals[j][off] != chaosFingerprint(g) {
					t.Errorf("global %d on dst %d: got %v, want %v", g, j, dstLocals[j][off], chaosFingerprint(g))
				}
			}
		}
		// The stale schedule entry must be gone from the cache.
		if cache.Invalidate(src, dst) {
			t.Error("schedule cache still held the pre-crash entry after re-plan")
		}
	case redist.FailStrict:
		for j := 0; j < nDst; j++ {
			var rd *core.ErrRankDown
			if !errors.As(errs[j], &rd) || rd.Rank != victim {
				t.Errorf("dst rank %d: err = %v, want *core.ErrRankDown for rank %d", j, errs[j], victim)
			}
		}
	}
}

func chaosIface(t *testing.T) *sidl.Interface {
	t.Helper()
	pkg, err := sidl.Parse(`package chaos; interface Counter {
		independent double bump(in double x);
	}`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("Counter")
	return iface
}

// chaosPRMI wires a 1×1 caller/callee pair over a fault-injected conn with
// a non-idempotent counter handler; count is callee-side ground truth.
func chaosPRMI(t *testing.T, sc faultconn.Scenario) (*prmi.CallerPort, *atomic.Int64) {
	t.Helper()
	iface := chaosIface(t)
	fc, peer := faultconn.Pipe(sc)
	t.Cleanup(func() { fc.Close() })
	var count atomic.Int64
	ep := prmi.NewEndpoint(iface, prmi.NewConnLink([]transport.Conn{peer}, 0), 0, 1, 1)
	if err := ep.Handle("bump", func(in *prmi.Incoming, out *prmi.Outgoing) error {
		out.Return = float64(count.Add(1))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	go ep.Serve()
	port := prmi.NewCallerPort(iface, prmi.NewConnLink([]transport.Conn{fc}, 0), 0, 1, prmi.Eager)
	return port, &count
}

// TestChaosPRMIExactlyOnce drives a non-idempotent counter through the
// retry policy over a lossy link: every logical call must execute exactly
// once on the callee no matter how many attempts the drops force.
func TestChaosPRMIExactlyOnce(t *testing.T) {
	port, count := chaosPRMI(t, faultconn.Scenario{
		Seed: 99,
		Send: faultconn.Faults{Drop: 0.3},
		Recv: faultconn.Faults{Drop: 0.3},
	})
	port.SetRetryPolicy(prmi.RetryPolicy{
		Timeout:     50 * time.Millisecond,
		MaxAttempts: 15,
		Backoff:     time.Millisecond,
	})
	const calls = 15
	for i := 1; i <= calls; i++ {
		res, err := port.CallIndependent(0, "bump", prmi.Simple("x", float64(i)))
		if err != nil {
			t.Fatalf("logical call %d: %v", i, err)
		}
		if got := res.Return.(float64); got != float64(i) {
			t.Fatalf("call %d returned count %v: a retry re-executed or a call was lost", i, got)
		}
	}
	if got := count.Load(); got != calls {
		t.Fatalf("callee executed %d times for %d logical calls", got, calls)
	}
}

// TestChaosPRMICalleeCrash crashes the link endpoint after a fixed message
// count: the calls that fit before the crash succeed (and are counted
// exactly once); the first call into the silence fails with the typed
// timeout within the retry budget — bounded, not hung.
func TestChaosPRMICalleeCrash(t *testing.T) {
	// Each clean call is two messages (invocation + reply); CrashAfter 6
	// admits exactly three calls, then silence.
	port, count := chaosPRMI(t, faultconn.Scenario{Seed: 7, CrashAfter: 6})
	port.SetRetryPolicy(prmi.RetryPolicy{
		Timeout:     40 * time.Millisecond,
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
	})
	for i := 1; i <= 3; i++ {
		if _, err := port.CallIndependent(0, "bump", prmi.Simple("x", float64(i))); err != nil {
			t.Fatalf("pre-crash call %d: %v", i, err)
		}
	}
	start := time.Now()
	_, err := port.CallIndependent(0, "bump", prmi.Simple("x", 4.0))
	if !errors.Is(err, prmi.ErrTimeout) {
		t.Fatalf("post-crash call: err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("post-crash call took %v; retry budget should bound it", elapsed)
	}
	if got := count.Load(); got != 3 {
		t.Fatalf("callee executed %d calls, want exactly the 3 pre-crash ones", got)
	}
}
