package mxn

// Integration tests: each couples several subsystems end to end, the way
// the examples do, but with assertions so the full flows stay covered by
// `go test`.

import (
	"errors"
	"math"
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/cumulvs"
	"mxn/internal/dad"
	"mxn/internal/mct"
	"mxn/internal/meshsim"
)

// TestIntegrationClimateCoupling runs a compact version of the climate
// example: atmosphere (4 ranks, fine grid) and ocean (2 ranks, coarse
// grid) coupled through MCT routers and sparse-matrix interpolation, with
// accumulation and conservation checks.
func TestIntegrationClimateCoupling(t *testing.T) {
	const (
		atmNLat, atmNLon = 12, 24
		ocnNLat, ocnNLon = 6, 12
		atmRanks         = 4
		ocnRanks         = 2
		intervals        = 4
		stepsPerCouple   = 3
	)
	atm := meshsim.NewAtmosphere(atmNLat, atmNLon)
	ocn := meshsim.NewOcean(ocnNLat, ocnNLon)
	finePts := atmNLat * atmNLon
	coarsePts := ocnNLat * ocnNLon
	atmMap := mct.BlockMap(finePts, atmRanks)
	ocnMap := mct.BlockMap(coarsePts, ocnRanks)
	fineOnOcn := mct.BlockMap(finePts, ocnRanks)
	a2o, err := mct.NewRouter(atmMap, fineOnOcn)
	if err != nil {
		t.Fatal(err)
	}
	f2c := meshsim.RegridMatrix(atmNLat, atmNLon, ocnNLat, ocnNLon)

	drift := make([]float64, intervals)
	sstTrend := make([]float64, intervals)
	var mu sync.Mutex

	comm.Run(atmRanks+ocnRanks, func(world *comm.Comm) {
		color := 0
		if world.Rank() >= atmRanks {
			color = 1
		}
		cohort := world.Split(color)
		atmComm, ocnComm := cohort, cohort
		if world.Rank() < atmRanks {
			rank := world.Rank()
			lsize := atmMap.LocalSize(rank)
			state := mct.MustAttrVect([]string{"t", "q"}, lsize)
			acc, _ := mct.NewAccumulator([]string{"t", "q"}, lsize)
			grid, _ := atm.Grid.LocalGrid(atmMap, rank)
			step := 0
			for iv := 0; iv < intervals; iv++ {
				acc.Reset()
				for s := 0; s < stepsPerCouple; s++ {
					atm.Eval(atmMap, rank, step, state)
					acc.Accumulate(state)
					step++
				}
				avg, _ := acc.Average()
				if err := a2o.Send(world, atmRanks, rank, avg, 0); err != nil {
					t.Errorf("atm send: %v", err)
					return
				}
				// Conservation check: fine-side average vs coarse-side
				// average reported back by the ocean.
				fineAvg, _ := mct.SpatialAverage(atmComm, avg, "t", grid)
				payload, _ := world.Recv(atmRanks, 7)
				coarseAvg := payload.(float64)
				if rank == 0 {
					mu.Lock()
					drift[iv] = math.Abs(fineAvg - coarseAvg)
					mu.Unlock()
				}
			}
		} else {
			rank := world.Rank() - atmRanks
			lsize := ocnMap.LocalSize(rank)
			sst := make([]float64, lsize)
			ocn.InitSST(ocnMap, rank, sst)
			grid, _ := ocn.Grid.LocalGrid(ocnMap, rank)
			mv, err := mct.NewMatVec(ocnComm, meshsim.LocalMatrix(f2c, ocnMap, rank), fineOnOcn, ocnMap, 20)
			if err != nil {
				t.Errorf("matvec: %v", err)
				return
			}
			for iv := 0; iv < intervals; iv++ {
				fine := mct.MustAttrVect([]string{"t", "q"}, fineOnOcn.LocalSize(rank))
				if err := a2o.Recv(world, 0, rank, fine, 0); err != nil {
					t.Errorf("ocn recv: %v", err)
					return
				}
				coarse := mct.MustAttrVect([]string{"t", "q"}, lsize)
				if err := mv.Apply(ocnComm, fine, coarse, 40); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				// Report the interpolated coarse average for conservation.
				cAvg, _ := mct.SpatialAverage(ocnComm, coarse, "t", grid)
				ocn.Relax(sst, coarse.Field("t"))
				sAvgVect := mct.MustAttrVect([]string{"t"}, lsize)
				copy(sAvgVect.Field("t"), sst)
				sAvg, _ := mct.SpatialAverage(ocnComm, sAvgVect, "t", grid)
				if rank == 0 {
					mu.Lock()
					sstTrend[iv] = sAvg
					mu.Unlock()
					for a := 0; a < atmRanks; a++ {
						world.Send(a, 7, cAvg)
					}
				} else {
					// Only rank 0 reports; others continue.
					_ = sAvg
				}
			}
		}
	})

	// The row-normalized regrid preserves means to first order on these
	// smooth fields: drift must be tiny.
	for iv, d := range drift {
		if d > 0.05 {
			t.Errorf("interval %d: conservation drift %v", iv, d)
		}
	}
	// SST relaxes monotonically toward the atmospheric mean (≈288 K): the
	// distance to the forcing must shrink every interval.
	const atmMean = 288.0
	for iv := 1; iv < intervals; iv++ {
		if math.Abs(sstTrend[iv]-atmMean) >= math.Abs(sstTrend[iv-1]-atmMean) {
			t.Errorf("SST not relaxing toward forcing: %v", sstTrend)
			break
		}
	}
}

// TestIntegrationSteeredViz runs the steering example's flow: a parallel
// heat solver publishes frames through a CUMULVS channel while a viewer
// steers the diffusivity; the steering must observably accelerate decay.
func TestIntegrationSteeredViz(t *testing.T) {
	const n, np, steps = 32, 4, 120
	solver, err := meshsim.NewHeat2D(n, np)
	if err != nil {
		t.Fatal(err)
	}
	simSide, viewSide := BridgePair()
	sim := cumulvs.NewSim(np, simSide)
	desc, _ := dad.NewDescriptor("u", dad.Float64, dad.ReadOnly, solver.Template())
	if err := sim.RegisterField(desc); err != nil {
		t.Fatal(err)
	}
	if err := sim.RegisterParam("alpha", 0.01); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			cont, err := sim.Service(1)
			if err != nil || !cont {
				return
			}
		}
	}()

	type sample struct {
		epoch uint64
		peak  float64
	}
	samples := make(chan sample, steps+1)
	viewReady := make(chan struct{})
	var viewerWG sync.WaitGroup
	viewerWG.Add(1)
	go func() {
		defer viewerWG.Done()
		defer close(samples)
		viewer := cumulvs.NewViewer(viewSide)
		ch, err := viewer.OpenView("v", cumulvs.View{Field: "u", Stride: []int{2, 2}, Sync: cumulvs.EachFrame})
		// The simulation must not post frames before the view exists, or
		// early epochs are missed (each-frame consumers count every one).
		close(viewReady)
		if err != nil {
			t.Errorf("open view: %v", err)
			return
		}
		frame := make([]float64, ch.FrameLen())
		steered := false
		for {
			epoch, err := ch.NextFrame(frame)
			if errors.Is(err, cumulvs.ErrStreamEnded) {
				viewer.Stop()
				return
			}
			if err != nil {
				t.Errorf("next frame: %v", err)
				return
			}
			peak := 0.0
			for _, v := range frame {
				if v > peak {
					peak = v
				}
			}
			samples <- sample{epoch, peak}
			if !steered && epoch >= steps/2 {
				steered = true
				if err := viewer.SetParam("alpha", 0.24); err != nil {
					t.Errorf("steer: %v", err)
				}
			}
		}
	}()

	<-viewReady
	comm.Run(np, func(c *comm.Comm) {
		u := solver.Init(c.Rank())
		for s := 0; s < steps; s++ {
			var alpha float64
			if c.Rank() == 0 {
				alpha, _ = sim.Param("alpha")
			}
			alpha = c.Bcast(0, alpha).(float64)
			u = solver.Step(c, c.Rank(), u, alpha, 0)
			if err := sim.PostFrame("u", c.Rank(), u); err != nil {
				t.Errorf("post: %v", err)
				return
			}
		}
		sim.CloseFrames("u", c.Rank())
	})
	viewerWG.Wait()

	// Decay rate before steering (tiny alpha) must be far smaller than
	// after (large alpha).
	var peaks []float64
	for s := range samples {
		peaks = append(peaks, s.peak)
	}
	if len(peaks) != steps {
		t.Fatalf("viewer saw %d of %d frames", len(peaks), steps)
	}
	q := steps / 4
	earlyDecay := peaks[q] - peaks[2*q-1]             // well before steering
	lateDecay := peaks[steps/2+q/2] - peaks[steps-1]  // after steering
	if !(lateDecay > 4*earlyDecay && lateDecay > 0) { // steering visibly accelerated diffusion
		t.Errorf("steering had no visible effect: early decay %v, late decay %v", earlyDecay, lateDecay)
	}
}

// TestIntegrationDeferredPullThroughFacade couples the facade's PRMI
// surface with the deferred-transfer strategy over real worlds.
func TestIntegrationDeferredPullThroughFacade(t *testing.T) {
	pkg, err := ParseSIDL(`package p; interface I { collective double mean(in parallel array<double> x, in int parts); }`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("I")
	const m, n, d = 3, 2, 18
	callerTpl, _ := NewTemplate([]int{d}, []AxisDist{BlockAxis(m)})
	w := NewWorld(m + n)
	all := w.Comms()
	ranks := []int{0, 1, 2}
	cohort := w.Group(ranks)
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ep := NewEndpoint(iface, NewCommLink(all[m+j], 0, 0), j, n, m)
			ep.Handle("mean", func(in *Incoming, out *Outgoing) error {
				parts := int(in.Simple["parts"].(int64))
				layout, err := NewTemplate([]int{d}, []AxisDist{CyclicAxis(parts)})
				if err != nil {
					return err
				}
				local, err := in.Pull("x", layout)
				if err != nil {
					return err
				}
				sum := 0.0
				for _, v := range local {
					sum += v
				}
				out.Return = sum
				return nil
			})
			if err := ep.Serve(); err != nil {
				t.Errorf("serve %d: %v", j, err)
			}
		}(j)
	}
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewCallerPort(iface, NewCommLink(all[i], m, 0), i, n, BarrierDelayed)
			local := make([]float64, callerTpl.LocalCount(i))
			for li := range local {
				local[li] = 1
			}
			res, err := p.CallCollective("mean", FullParticipation(cohort[i]),
				ParallelRef("x", callerTpl, local), Simple("parts", n))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			} else if res.Return != float64(d)/n {
				t.Errorf("caller %d: partial sum %v, want %v", i, res.Return, float64(d)/n)
			}
			p.Close()
		}(i)
	}
	wg.Wait()
}
